package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"logsynergy/internal/broker"
	"logsynergy/internal/core"
	"logsynergy/internal/drain"
	"logsynergy/internal/embed"
	"logsynergy/internal/fault"
	"logsynergy/internal/lei"
	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
)

// Config assembles a sharded runtime. Shards, Dir, Detector, Interp,
// Embedder and Sink are required; zero fields take the defaults
// documented on each.
type Config struct {
	// Shards is the partition count (default 1).
	Shards int
	// Dir is the runtime root; partition i owns the WAL directory Dir/p<i>.
	Dir string
	// KeyFunc extracts the stream key from a raw line (default
	// DefaultKeyFunc: the first whitespace-delimited token).
	KeyFunc func(line string) string
	// Group is the consumer-group name each partition's pipeline reads as
	// (default "detector").
	Group string
	// CommitEvery is how many fed lines may elapse between a partition's
	// state persist + offset commit (default 256; 1 commits after every
	// line). Partitions additionally commit whenever they catch up with
	// their backlog and on graceful shutdown.
	CommitEvery int
	// Vnodes overrides the partitioner's virtual-node count (default
	// DefaultVirtualNodes).
	Vnodes int
	// Broker is the per-partition broker template; Dir, Metrics and
	// Faults are overridden per partition.
	Broker broker.Config
	// Pipeline is the per-partition pipeline template; Metrics and Faults
	// are overridden per partition.
	Pipeline pipeline.Config
	// Detector is the trained base detector. Each partition scores with
	// the shared (read-only) model and its own clone of the event table.
	Detector *core.Detector
	// Interp is the inner interpreter, wrapped by the shared singleflight
	// InterpCache.
	Interp lei.Interpreter
	// Embedder is shared across partitions (it memoizes whole-text
	// vectors, so hot templates embed once process-wide).
	Embedder *embed.Embedder
	// Sink receives every partition's anomaly reports through the
	// order-preserving fan-in (per-key order is the per-partition
	// delivery order; the fan-in serializes cross-partition delivery).
	Sink pipeline.Sink
	// Metrics is the runtime-level registry for shared components: the
	// interp cache, the router, the fan-in (nil = obs.Default()).
	Metrics *obs.Registry
	// ShardMetrics supplies partition i's registry (nil = a fresh
	// isolated registry per partition). Per-partition pipeline and broker
	// metrics land here; Snapshot() exposes them both merged and under a
	// shard<i>. prefix.
	ShardMetrics func(i int) *obs.Registry
	// ShardFaults supplies partition i's fault-injection registry,
	// consulted by both that partition's broker and its pipeline (nil =
	// nothing injected). Chaos tests use it to break exactly one shard.
	ShardFaults func(i int) *fault.Registry
	// OnWindow, when set, observes every scored window: partition index,
	// stream key, event-id sequence, score, and whether detection
	// terminally failed. The equivalence harness uses it to capture
	// per-key score sequences.
	OnWindow func(shard int, key string, seq []int, score float64, abandoned bool)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.KeyFunc == nil {
		c.KeyFunc = DefaultKeyFunc
	}
	if c.Group == "" {
		c.Group = "detector"
	}
	if c.CommitEvery <= 0 {
		c.CommitEvery = 256
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	return c
}

// Runtime is the assembled sharded detection runtime: N partition
// workers, each tailing its own WAL through its own pipeline, a
// consistent-hash router in front, and a fan-in sink behind.
type Runtime struct {
	cfg   Config
	part  *Partitioner
	cache *InterpCache
	reg   *obs.Registry
	parts []*partition

	faninMu      sync.Mutex
	faninTotal   *obs.Counter
	routedLines  *obs.Counter
	rejectedByBP *obs.Counter
}

// partition is one shard: broker, consumer, pipeline, keyed windower,
// worker goroutine, and resume bookkeeping.
type partition struct {
	idx    int
	dir    string
	group  string
	bk     *broker.Broker
	cons   *broker.Consumer
	reg    *obs.Registry
	pipe   *pipeline.Pipeline
	keyed  *pipeline.Keyed
	keyFor func(string) string
	layout int // shard count this partition was opened under (persisted stamp)

	commitEvery   int
	ackBase       uint64 // committed offset when the consumer opened
	restored      uint64 // offsets ≤ restored are already reflected in restored tails
	consumed      uint64 // highest offset handed to this worker
	lastSaved     uint64 // Consumed value at the last state persist
	lastCommitted uint64 // broker offset at the last successful Commit
	sinceCommit   int

	commitErrs *obs.Counter

	idle   atomic.Bool
	killed atomic.Bool
	done   chan struct{}

	errMu sync.Mutex
	err   error
}

// Open builds the runtime at cfg.Dir: per-partition WAL directories are
// created (or recovered — torn tails truncated, offsets loaded, window
// tails restored), partition pipelines are assembled around clones of
// the detector's event table, and one worker per partition starts
// tailing its consumer group.
func Open(cfg Config) (*Runtime, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("shard: Config.Dir is required")
	}
	if cfg.Detector == nil || cfg.Interp == nil || cfg.Embedder == nil || cfg.Sink == nil {
		return nil, errors.New("shard: Detector, Interp, Embedder and Sink are required")
	}
	// Finish any rebalance that crashed mid-install: a committed manifest
	// rolls forward to the new layout, an uncommitted one rolls back to
	// the old. Either way every partition opens on one consistent layout.
	if err := recoverRebalance(cfg.Dir); err != nil {
		return nil, err
	}
	rt := &Runtime{
		cfg:          cfg,
		part:         NewPartitionerVnodes(cfg.Shards, cfg.Vnodes),
		reg:          cfg.Metrics,
		faninTotal:   cfg.Metrics.Counter("shard.fanin_reports_total"),
		routedLines:  cfg.Metrics.Counter("shard.routed_lines_total"),
		rejectedByBP: cfg.Metrics.Counter("shard.rejected_lines_total"),
	}
	rt.cache = NewInterpCache(cfg.Interp, cfg.Metrics)
	cfg.Metrics.Gauge("shard.partitions").Set(int64(cfg.Shards))

	for i := 0; i < cfg.Shards; i++ {
		pt, err := rt.openPartition(i)
		if err != nil {
			rt.closePartitions()
			return nil, fmt.Errorf("shard: opening partition %d: %w", i, err)
		}
		rt.parts = append(rt.parts, pt)
	}
	for _, pt := range rt.parts {
		go pt.run()
	}
	return rt, nil
}

// openPartition assembles one shard (no worker started yet).
func (rt *Runtime) openPartition(i int) (*partition, error) {
	cfg := rt.cfg
	dir := filepath.Join(cfg.Dir, fmt.Sprintf("p%d", i))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	if cfg.ShardMetrics != nil {
		if r := cfg.ShardMetrics(i); r != nil {
			reg = r
		}
	}
	var faults *fault.Registry
	if cfg.ShardFaults != nil {
		faults = cfg.ShardFaults(i)
	}

	bcfg := cfg.Broker
	bcfg.Dir = dir
	bcfg.Metrics = reg
	bcfg.Faults = faults
	bk, err := broker.Open(bcfg)
	if err != nil {
		return nil, err
	}

	st, err := loadState(statePath(dir))
	if err != nil {
		bk.Close()
		return nil, err
	}
	if st.Partitions != 0 && st.Partitions != cfg.Shards {
		bk.Close()
		return nil, fmt.Errorf("shard: partition %s was laid out for %d shards but the runtime is opening %d; "+
			"run `logsynergy rebalance -from %d -to %d` over the broker directory first",
			dir, st.Partitions, cfg.Shards, st.Partitions, cfg.Shards)
	}

	// Each partition scores with the shared read-only model but owns its
	// event-table clone and its own parser, so online extension never
	// crosses shard boundaries. A v2 state file carries the parser's full
	// template groups (offline seeds plus everything the stream taught it)
	// — import them verbatim so restored ids keep their meaning. Legacy
	// state carries none; replay the offline templates as before.
	det := core.NewDetector(cfg.Detector.Model, cfg.Detector.Table.Clone())
	det.Now = cfg.Detector.Now
	parser := drain.NewDefault()
	if len(st.Events) > 0 {
		if err := parser.Import(st.Events); err != nil {
			bk.Close()
			return nil, fmt.Errorf("restoring parser state: %w", err)
		}
	} else {
		for _, in := range det.Table.Interps {
			parser.Parse(in.Template)
		}
	}

	pcfg := cfg.Pipeline
	pcfg.Metrics = reg
	pcfg.Faults = faults
	pt := &partition{
		idx:         i,
		dir:         dir,
		group:       cfg.Group,
		bk:          bk,
		reg:         reg,
		keyFor:      cfg.KeyFunc,
		layout:      cfg.Shards,
		commitEvery: cfg.CommitEvery,
		commitErrs:  reg.Counter("shard.commit_errors_total"),
		done:        make(chan struct{}),
	}
	pt.pipe = pipeline.New(pcfg, parser, det, rt.cache, cfg.Embedder, &faninSink{rt: rt, shard: i})
	pt.keyed = pipeline.NewKeyed(pt.pipe)
	if cfg.OnWindow != nil {
		shardIdx := i
		pt.keyed.OnWindow = func(key string, seq []int, score float64, abandoned bool) {
			cfg.OnWindow(shardIdx, key, seq, score, abandoned)
		}
	}

	// Sync the event table before touching any line: imported event ids
	// can be out of discovery order relative to the table (a rebalance
	// splices groups from other partitions), and lazy extension in the
	// feed path would mis-assign their vectors.
	if len(st.Events) > 0 {
		if err := pt.pipe.SyncTable(); err != nil {
			bk.Close()
			return nil, err
		}
	}
	pt.pipe.Library().Import(st.Patterns)
	pt.keyed.Restore(st.Tails)
	pt.restored = st.Consumed
	pt.consumed = st.Consumed
	pt.lastSaved = st.Consumed

	cons, err := bk.Consumer(cfg.Group)
	if err != nil {
		bk.Close()
		return nil, err
	}
	cons.AutoCommit = false // the worker commits explicitly, tails first
	pt.cons = cons
	pt.ackBase = cons.Position() - 1
	pt.lastCommitted = pt.ackBase
	if pt.consumed < pt.ackBase {
		// A state file older than the committed offset (e.g. wiped) —
		// never ack backwards.
		pt.consumed = pt.ackBase
		pt.restored = pt.ackBase
		pt.lastSaved = pt.ackBase
	}
	return pt, nil
}

// run is the partition worker: tail the consumer, demultiplex by key,
// feed the keyed pipeline, and commit (state file, then offsets) on the
// configured cadence, whenever the backlog drains, and at end of stream.
func (pt *partition) run() {
	defer close(pt.done)
	for {
		if pt.caughtUp() {
			pt.flushCommit()
			pt.idle.Store(true)
		}
		line, ok := pt.cons.Next()
		if !ok {
			break
		}
		pt.idle.Store(false)
		off := pt.cons.Position() - 1
		if off > pt.consumed {
			pt.consumed = off
		}
		if off <= pt.restored {
			// Redelivered record already reflected in the restored window
			// tails; feeding it again would double-count the window phase.
			continue
		}
		pt.keyed.Feed(pt.keyFor(line), line)
		pt.sinceCommit++
		if pt.sinceCommit >= pt.commitEvery {
			pt.flushCommit()
		}
	}
	if !pt.killed.Load() {
		// End of stream (intake closed and backlog drained, or consumer
		// failure): flush the pending batch and commit this partition's
		// offset — every partition commits its own offset on shutdown,
		// not just the last one to drain.
		pt.flushCommit()
	}
	if err := pt.cons.Err(); err != nil {
		pt.setErr(err)
	}
	pt.idle.Store(true)
}

// caughtUp reports whether the worker has consumed everything appended.
func (pt *partition) caughtUp() bool {
	return pt.cons.Position() >= pt.bk.NextOffset()
}

// flushCommit scores pending windows, persists the resume state, and
// commits the consumer offset — in that order, so a crash between the
// two leaves the offset behind the tails (the worker skips the
// redelivered prefix on restart). Commit failures are counted and
// retried on the next cadence; consumption continues (at-least-once).
func (pt *partition) flushCommit() {
	pt.keyed.Flush()
	pt.sinceCommit = 0
	if pt.consumed == pt.lastSaved && pt.consumed == pt.lastCommitted {
		return
	}
	if pt.consumed != pt.lastSaved {
		st := partitionState{
			Partitions: pt.layout,
			Consumed:   pt.consumed,
			Tails:      pt.keyed.Tails(),
			Events:     pt.pipe.Parser().Export(),
			Patterns:   pt.pipe.Library().Export(),
		}
		if err := saveState(statePath(pt.dir), st); err != nil {
			pt.commitErrs.Inc()
			pt.setErr(err)
			return
		}
		pt.lastSaved = pt.consumed
	}
	// The state file can be up to date while the broker offset trails it —
	// e.g. a restart that skipped a redelivered prefix. Commit the offset
	// whenever it lags what the tails already reflect.
	pt.cons.Ack(pt.consumed - pt.ackBase)
	if err := pt.cons.Commit(); err != nil {
		pt.commitErrs.Inc()
		pt.setErr(err)
		return
	}
	pt.lastCommitted = pt.consumed
}

// setErr records the first worker error.
func (pt *partition) setErr(err error) {
	pt.errMu.Lock()
	if pt.err == nil {
		pt.err = err
	}
	pt.errMu.Unlock()
}

// workerErr returns the recorded worker error, if any.
func (pt *partition) workerErr() error {
	pt.errMu.Lock()
	defer pt.errMu.Unlock()
	return pt.err
}

// finished reports whether the worker goroutine has exited.
func (pt *partition) finished() bool {
	select {
	case <-pt.done:
		return true
	default:
		return false
	}
}

// drained reports whether this partition has nothing left to do: its
// worker exited, or it is idle (flushed + committed) with an empty
// backlog.
func (pt *partition) drained() bool {
	if pt.finished() {
		return true
	}
	return pt.idle.Load() && pt.bk.Lag(pt.group) == 0 && pt.caughtUp()
}

// faninSink delivers one partition's reports into the shared sink,
// serialized across partitions. Per-key report order needs no extra
// work: a key is pinned to one partition, and that partition delivers
// its reports in window-completion order on a single goroutine.
type faninSink struct {
	rt    *Runtime
	shard int
}

// Notify implements pipeline.Sink.
func (f *faninSink) Notify(r *core.Report) {
	f.rt.faninMu.Lock()
	defer f.rt.faninMu.Unlock()
	f.rt.faninTotal.Inc()
	f.rt.cfg.Sink.Notify(r)
}

// TryNotify implements pipeline.FallibleSink, propagating delivery
// errors (and thus retries, breakers and spill) when the merged sink
// reports them.
func (f *faninSink) TryNotify(r *core.Report) error {
	f.rt.faninMu.Lock()
	defer f.rt.faninMu.Unlock()
	if fs, ok := f.rt.cfg.Sink.(pipeline.FallibleSink); ok {
		if err := fs.TryNotify(r); err != nil {
			return err
		}
		f.rt.faninTotal.Inc()
		return nil
	}
	f.rt.faninTotal.Inc()
	f.rt.cfg.Sink.Notify(r)
	return nil
}

// Shards returns the partition count.
func (rt *Runtime) Shards() int { return rt.cfg.Shards }

// Partitioner exposes the key → partition mapping (diagnostics, tests).
func (rt *Runtime) Partitioner() *Partitioner { return rt.part }

// Cache exposes the shared interpretation cache.
func (rt *Runtime) Cache() *InterpCache { return rt.cache }

// PartitionFor returns the partition index owning key.
func (rt *Runtime) PartitionFor(key string) int { return rt.part.Partition(key) }

// ShardStats returns partition i's pipeline stats.
func (rt *Runtime) ShardStats(i int) pipeline.Stats { return rt.parts[i].pipe.Stats() }

// Stats sums pipeline stats across every partition.
func (rt *Runtime) Stats() pipeline.Stats {
	var total pipeline.Stats
	for _, pt := range rt.parts {
		s := pt.pipe.Stats()
		total.LinesCollected += s.LinesCollected
		total.LinesDropped += s.LinesDropped
		total.SequencesFormed += s.SequencesFormed
		total.PatternHits += s.PatternHits
		total.PatternMisses += s.PatternMisses
		total.PatternEvictions += s.PatternEvictions
		total.Anomalies += s.Anomalies
		total.NewEvents += s.NewEvents
		total.Retries += s.Retries
		total.Degraded += s.Degraded
		total.Spilled += s.Spilled
		total.SpillDropped += s.SpillDropped
		total.BreakerOpens += s.BreakerOpens
		total.SinkErrors += s.SinkErrors
		total.ParseFailures += s.ParseFailures
		total.DetectFailures += s.DetectFailures
	}
	return total
}

// Committed returns partition i's committed consumer offset.
func (rt *Runtime) Committed(i int) uint64 { return rt.parts[i].bk.Committed(rt.cfg.Group) }

// Snapshot merges the runtime registry with every partition's registry.
// Each partition's counters and gauges additionally appear under a
// shard<i>. prefix, so a scrape shows both fleet totals and per-shard
// breakdowns.
func (rt *Runtime) Snapshot() obs.Snapshot {
	merged := rt.reg.Snapshot()
	for i, pt := range rt.parts {
		s := pt.reg.Snapshot()
		merged = merged.Merge(s)
		prefix := fmt.Sprintf("shard%d.", i)
		for k, v := range s.Counters {
			merged.Counters[prefix+k] = v
		}
		for k, v := range s.Gauges {
			merged.Gauges[prefix+k] = v
		}
	}
	return merged
}

// Drain blocks until every partition is drained — its worker exited, or
// it is idle with an empty backlog and a committed offset — or ctx ends.
// Appends arriving during Drain extend the wait.
func (rt *Runtime) Drain(ctx context.Context) error {
	for {
		all := true
		for _, pt := range rt.parts {
			if !pt.drained() {
				all = false
				break
			}
		}
		if all {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// CloseIntake stops accepting appends on every partition. Workers drain
// their backlogs, flush, commit, and exit — the first half of a graceful
// shutdown.
func (rt *Runtime) CloseIntake() {
	for _, pt := range rt.parts {
		pt.bk.CloseIntake()
	}
}

// Close shuts the runtime down gracefully: intake closes, every worker
// drains and commits its own partition's offset, then consumers and
// brokers close. It returns the first error encountered.
func (rt *Runtime) Close() error {
	rt.CloseIntake()
	for _, pt := range rt.parts {
		<-pt.done
	}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, pt := range rt.parts {
		keep(pt.workerErr())
	}
	keep(rt.closePartitions())
	return firstErr
}

// Kill simulates a crash: every worker stops without flushing or
// committing, and every broker drops its handles with no final fsync or
// offset persist. Whatever the last flushCommit persisted is what the
// next Open resumes from.
func (rt *Runtime) Kill() {
	for _, pt := range rt.parts {
		pt.killed.Store(true)
	}
	for _, pt := range rt.parts {
		pt.bk.Kill()
	}
	for _, pt := range rt.parts {
		<-pt.done
		pt.cons.Close()
	}
}

// closePartitions releases consumers and brokers (idempotent).
func (rt *Runtime) closePartitions() error {
	var firstErr error
	for _, pt := range rt.parts {
		if pt.cons != nil {
			pt.cons.Close()
		}
		if err := pt.bk.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
