package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"logsynergy/internal/broker"
	"logsynergy/internal/core"
	"logsynergy/internal/drain"
	"logsynergy/internal/embed"
	"logsynergy/internal/fault"
	"logsynergy/internal/lei"
	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
)

// Config assembles a sharded runtime. Shards, Dir, Detector, Interp,
// Embedder and Sink are required; zero fields take the defaults
// documented on each.
type Config struct {
	// Shards is the partition count (default 1).
	Shards int
	// Dir is the runtime root; partition i owns the WAL directory Dir/p<i>.
	Dir string
	// KeyFunc extracts the stream key from a raw line (default
	// DefaultKeyFunc: the first whitespace-delimited token).
	KeyFunc func(line string) string
	// Group is the consumer-group name each partition's pipeline reads as
	// (default "detector").
	Group string
	// CommitEvery is how many fed lines may elapse between a partition's
	// state persist + offset commit (default 256; 1 commits after every
	// line). Partitions additionally commit whenever they catch up with
	// their backlog and on graceful shutdown.
	CommitEvery int
	// Vnodes overrides the partitioner's virtual-node count (default
	// DefaultVirtualNodes).
	Vnodes int
	// Subset, when non-nil, restricts the runtime to the named partition
	// indices: only their WAL directories are opened and fed, and routing
	// a key owned by an unlisted partition returns ErrNotAssigned. The
	// ring still spans all Shards partitions, so key→partition mapping is
	// identical across every process of a cluster fleet. nil opens every
	// partition (the single-process default); an empty non-nil slice opens
	// none (a standby node waiting to adopt).
	Subset []int
	// Cutover, when non-nil, opens the runtime into a live cutover whose
	// journal is held elsewhere (a cluster coordinator's directory, not
	// this root): partitions open under their mid-cutover layouts with
	// the spec's recorded freeze offsets and per-key phases, committed
	// keys roll forward from staged splices, and the runtime then serves
	// passively — the networked coordinator drives the per-key protocol
	// over the admin surface and calls CompleteCutover. Shards must
	// equal Cutover.To. Mutually exclusive with a journal at Dir.
	Cutover *CutoverSpec
	// Broker is the per-partition broker template; Dir, Metrics and
	// Faults are overridden per partition.
	Broker broker.Config
	// Pipeline is the per-partition pipeline template; Metrics and Faults
	// are overridden per partition.
	Pipeline pipeline.Config
	// Detector is the trained base detector. Each partition scores with
	// the shared (read-only) model and its own clone of the event table.
	Detector *core.Detector
	// Interp is the inner interpreter, wrapped by the shared singleflight
	// InterpCache.
	Interp lei.Interpreter
	// Embedder is shared across partitions (it memoizes whole-text
	// vectors, so hot templates embed once process-wide).
	Embedder *embed.Embedder
	// Sink receives every partition's anomaly reports through the
	// order-preserving fan-in (per-key order is the per-partition
	// delivery order; the fan-in serializes cross-partition delivery).
	Sink pipeline.Sink
	// Metrics is the runtime-level registry for shared components: the
	// interp cache, the router, the fan-in (nil = obs.Default()).
	Metrics *obs.Registry
	// ShardMetrics supplies partition i's registry (nil = a fresh
	// isolated registry per partition). Per-partition pipeline and broker
	// metrics land here; Snapshot() exposes them both merged and under a
	// shard<i>. prefix.
	ShardMetrics func(i int) *obs.Registry
	// ShardFaults supplies partition i's fault-injection registry,
	// consulted by both that partition's broker and its pipeline (nil =
	// nothing injected). Chaos tests use it to break exactly one shard.
	ShardFaults func(i int) *fault.Registry
	// OnWindow, when set, observes every scored window: partition index,
	// stream key, event-id sequence, score, and whether detection
	// terminally failed. The equivalence harness uses it to capture
	// per-key score sequences.
	OnWindow func(shard int, key string, seq []int, score float64, abandoned bool)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.KeyFunc == nil {
		c.KeyFunc = DefaultKeyFunc
	}
	if c.Group == "" {
		c.Group = "detector"
	}
	if c.CommitEvery <= 0 {
		c.CommitEvery = 256
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	return c
}

// Runtime is the assembled sharded detection runtime: N partition
// workers, each tailing its own WAL through its own pipeline, a
// consistent-hash router in front, and a fan-in sink behind.
type Runtime struct {
	cfg   Config
	part  *Partitioner
	cache *InterpCache
	reg   *obs.Registry
	parts []*partition
	// byIdx maps partition index → open partition (nil = not served by
	// this runtime, which only happens under Config.Subset). Guarded by
	// routeMu like parts.
	byIdx []*partition

	// routeMu guards the routing topology: part, parts, and cfg.Shards.
	// Producers and accessors read-lock; a live cutover's flip and finish
	// write-lock, making "freeze + journal + publish" and "restamp +
	// journal removal + ring swap" atomic with respect to appends.
	routeMu sync.RWMutex
	// liveMu serializes LiveRebalance calls.
	liveMu sync.Mutex
	// cut is the active live cutover (nil outside one). Workers and the
	// router load it per record; it is published after the journal is
	// durable and cleared after the journal is removed.
	cut atomic.Pointer[cutover]

	faninMu      sync.Mutex
	faninTotal   *obs.Counter
	routedLines  *obs.Counter
	rejectedByBP *obs.Counter
}

// partition is one shard: broker, consumer, pipeline, keyed windower,
// worker goroutine, and resume bookkeeping.
type partition struct {
	idx    int
	rt     *Runtime
	dir    string
	group  string
	bk     *broker.Broker
	cons   *broker.Consumer
	reg    *obs.Registry
	pipe   *pipeline.Pipeline
	keyed  *pipeline.Keyed
	keyFor func(string) string
	layout int          // shard count this partition was opened under (persisted stamp)
	ring   *Partitioner // ownership ring the worker checks records against

	// feedMu serializes detection state (keyed windower, pipeline parser
	// and library, consumed/save bookkeeping) between the worker — which
	// holds it per record — and a live cutover's coordinator, which holds
	// it to capture tails, apply splices and restamp. Lock order is
	// routeMu before feedMu; feedMu is never held across a routeMu
	// acquisition.
	feedMu sync.Mutex

	commitEvery   int
	ackBase       uint64 // committed offset when the consumer opened
	restored      uint64 // offsets ≤ restored are already reflected in restored tails
	consumed      uint64 // highest offset handed to this worker
	lastSaved     uint64 // Consumed value at the last state persist
	lastCommitted uint64 // broker offset at the last successful Commit
	sinceCommit   int

	// spliced marks moving keys this (destination) partition has merged
	// during a live cutover; persisted with the state so recovery knows
	// which splices its durable tails already reflect.
	spliced map[string]bool
	// forceSave makes the next flushCommit persist state even when the
	// consumed offset hasn't moved (cutover splices and restamps change
	// state without consuming records).
	forceSave bool

	commitErrs *obs.Counter

	idle   atomic.Bool
	killed atomic.Bool
	// gated is set while the worker is parked on an unreleased moving key
	// during a live cutover (its position is flushed and committed first,
	// so a parked partition is as durable as a drained one).
	gated atomic.Bool
	done  chan struct{}

	errMu sync.Mutex
	err   error
}

// Open builds the runtime at cfg.Dir: per-partition WAL directories are
// created (or recovered — torn tails truncated, offsets loaded, window
// tails restored), partition pipelines are assembled around clones of
// the detector's event table, and one worker per partition starts
// tailing its consumer group.
//
// A root carrying a live-cutover journal resumes the interrupted cutover
// before Open returns: the runtime must be opened at the journal's
// target shard count, partitions open under their mid-cutover layouts,
// committed keys roll forward from their staged splice files, and the
// remaining keys cut over exactly as if the process had never died.
func Open(cfg Config) (*Runtime, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("shard: Config.Dir is required")
	}
	if cfg.Detector == nil || cfg.Interp == nil || cfg.Embedder == nil || cfg.Sink == nil {
		return nil, errors.New("shard: Detector, Interp, Embedder and Sink are required")
	}
	if cfg.Subset != nil {
		seen := make(map[int]bool, len(cfg.Subset))
		for _, i := range cfg.Subset {
			if i < 0 || i >= cfg.Shards {
				return nil, fmt.Errorf("shard: Subset partition %d out of range for %d shards", i, cfg.Shards)
			}
			if seen[i] {
				return nil, fmt.Errorf("shard: Subset lists partition %d twice", i)
			}
			seen[i] = true
		}
	}
	j, err := loadJournal(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if spec := cfg.Cutover; spec != nil {
		if j != nil {
			return nil, fmt.Errorf("shard: %s has its own live-cutover journal and the config names a networked cutover; "+
				"finish one before starting the other", cfg.Dir)
		}
		if spec.To != spec.From+1 {
			return nil, fmt.Errorf("shard: networked cutover grows one partition at a time (%d -> %d)", spec.From, spec.To)
		}
		if cfg.Shards != spec.To {
			return nil, fmt.Errorf("shard: networked cutover targets %d partitions but the runtime is opening %d", spec.To, cfg.Shards)
		}
		if cfg.Vnodes != spec.Vnodes {
			return nil, fmt.Errorf("shard: networked cutover was computed with Vnodes=%d but the runtime is opening with %d", spec.Vnodes, cfg.Vnodes)
		}
		if len(spec.Freeze) != spec.From {
			return nil, fmt.Errorf("shard: networked cutover records %d freeze offsets for %d donor partitions", len(spec.Freeze), spec.From)
		}
	}
	if j != nil {
		if cfg.Subset != nil {
			return nil, fmt.Errorf("shard: %s has a live cutover in progress; finish it with a full runtime "+
				"(every partition) before serving a subset", cfg.Dir)
		}
		if cfg.Shards != j.To {
			return nil, fmt.Errorf("shard: %s has a live cutover to %d partitions in progress but the runtime is opening %d; "+
				"reopen at %d shards to let the cutover finish", cfg.Dir, j.To, cfg.Shards, j.To)
		}
		if cfg.Vnodes != j.Vnodes {
			return nil, fmt.Errorf("shard: %s's live cutover was computed with Vnodes=%d but the runtime is opening with %d; "+
				"a different ring would move a different key set", cfg.Dir, j.Vnodes, cfg.Vnodes)
		}
		if len(j.Freeze) != j.From {
			return nil, fmt.Errorf("shard: cutover journal records %d freeze offsets for %d donor partitions", len(j.Freeze), j.From)
		}
	} else {
		// Finish any offline rebalance that crashed mid-install: a committed
		// manifest rolls forward to the new layout, an uncommitted one rolls
		// back to the old. Either way every partition opens on one
		// consistent layout.
		if err := recoverRebalance(cfg.Dir); err != nil {
			return nil, err
		}
	}
	rt := &Runtime{
		cfg:          cfg,
		part:         NewPartitionerVnodes(cfg.Shards, cfg.Vnodes),
		reg:          cfg.Metrics,
		faninTotal:   cfg.Metrics.Counter("shard.fanin_reports_total"),
		routedLines:  cfg.Metrics.Counter("shard.routed_lines_total"),
		rejectedByBP: cfg.Metrics.Counter("shard.rejected_lines_total"),
	}
	rt.cache = NewInterpCache(cfg.Interp, cfg.Metrics)
	cfg.Metrics.Gauge("shard.partitions").Set(int64(cfg.Shards))

	if j != nil {
		rt.byIdx = make([]*partition, j.To)
		return rt.openResuming(j)
	}
	own := cfg.Subset
	if own == nil {
		own = make([]int, cfg.Shards)
		for i := range own {
			own[i] = i
		}
	} else {
		own = append([]int(nil), own...)
		sort.Ints(own)
	}
	cfg.Metrics.Gauge("shard.partitions_owned").Set(int64(len(own)))
	rt.byIdx = make([]*partition, cfg.Shards)
	if cfg.Cutover != nil {
		return rt.openMidCutover(cfg.Cutover, own)
	}
	for _, i := range own {
		pt, err := rt.openPartitionAt(i, openOpts{})
		if err != nil {
			rt.closePartitions()
			return nil, fmt.Errorf("shard: opening partition %d: %w", i, err)
		}
		// Without a journal there is no cutover: staged splice files and
		// persisted Spliced markers are debris from a finish that crashed
		// after its journal-removal commit point.
		sweepSplices(pt.dir)
		rt.parts = append(rt.parts, pt)
		rt.byIdx[i] = pt
	}
	for _, pt := range rt.parts {
		go pt.run()
	}
	return rt, nil
}

// openResuming opens a root mid-cutover and drives the cutover to
// completion before returning. Donors open under the journal's old
// layout and ring; the destination opens under the new ones, keeping its
// persisted Spliced markers. A partition stamped with either layout is
// accepted — a crash inside the finish leaves some partitions restamped.
func (rt *Runtime) openResuming(j *liveJournal) (*Runtime, error) {
	oldRing := NewPartitionerVnodes(j.From, rt.cfg.Vnodes)
	accept := func(s int) bool { return s == 0 || s == j.From || s == j.To }
	fail := func(err error) (*Runtime, error) {
		rt.closePartitions()
		return nil, err
	}
	for i := 0; i < j.From; i++ {
		pt, err := rt.openPartitionAt(i, openOpts{layout: j.From, ring: oldRing, acceptStamp: accept})
		if err != nil {
			return fail(fmt.Errorf("shard: opening partition %d: %w", i, err))
		}
		rt.parts = append(rt.parts, pt)
		rt.byIdx[i] = pt
	}
	dest, err := rt.openPartitionAt(j.From, openOpts{layout: j.To, ring: rt.part, acceptStamp: accept, keepSpliced: true})
	if err != nil {
		return fail(fmt.Errorf("shard: opening cutover destination partition %d: %w", j.From, err))
	}
	rt.parts = append(rt.parts, dest)
	rt.byIdx[j.From] = dest

	cut, err := rt.resumeCutover(j)
	if err != nil {
		return fail(err)
	}
	for _, pt := range rt.parts {
		go pt.run()
	}
	if _, _, err := rt.driveCutover(cut, j, liveOpts{to: j.To}); err != nil {
		cut.interrupt()
		rt.Kill()
		return nil, fmt.Errorf("shard: resuming live cutover: %w", err)
	}
	if err := rt.finishCutover(cut); err != nil {
		cut.interrupt()
		rt.Kill()
		return nil, fmt.Errorf("shard: resuming live cutover: %w", err)
	}
	return rt, nil
}

// openMidCutover opens a (possibly subset) runtime into a networked
// live cutover described by spec: the counterpart of openResuming for
// a cutover whose journal lives in the cluster directory. Donors open
// under the old layout and ring with the spec's freeze offsets;
// partition To-1, when owned, opens as the destination with its
// persisted Spliced markers and rolls committed keys forward from
// their staged splice files before its worker starts. Unlike
// openResuming, the cutover is NOT driven here — the runtime serves
// passively under it until the coordinator finishes the protocol over
// the admin surface.
func (rt *Runtime) openMidCutover(spec *CutoverSpec, own []int) (*Runtime, error) {
	oldRing := NewPartitionerVnodes(spec.From, rt.cfg.Vnodes)
	accept := func(s int) bool { return s == 0 || s == spec.From || s == spec.To }
	fail := func(err error) (*Runtime, error) {
		rt.closePartitions()
		return nil, err
	}
	cut := newCutover(spec.From, spec.To, oldRing, rt.part)
	for i := 0; i < spec.From; i++ {
		cut.freeze[i] = spec.Freeze[i]
	}
	for k, name := range spec.Keys {
		ph, ok := journalPhaseNames[name]
		if !ok {
			return fail(fmt.Errorf("shard: networked cutover has unknown phase %q for key %q", name, k))
		}
		cut.phase[k] = ph
	}
	for _, i := range own {
		o := openOpts{layout: spec.From, ring: oldRing, acceptStamp: accept}
		if i == spec.To-1 {
			if !spec.Dest {
				return fail(fmt.Errorf("shard: partition %d is the cutover destination but the spec does not mark this runtime as its host", i))
			}
			o = openOpts{layout: spec.To, ring: rt.part, acceptStamp: accept, keepSpliced: true}
		}
		pt, err := rt.openPartitionAt(i, o)
		if err != nil {
			return fail(fmt.Errorf("shard: opening partition %d: %w", i, err))
		}
		rt.parts = append(rt.parts, pt)
		rt.byIdx[i] = pt
	}
	// Scrub committed keys from owned donor tails (their donors may have
	// crashed before persisting the drop) and roll committed keys forward
	// on an owned destination — both before any worker runs.
	for _, pt := range rt.parts {
		if pt.idx >= spec.From {
			continue
		}
		pt.keyed.TakeTails(func(k string) bool { return cut.phase[k] >= phaseCommitted })
	}
	if rt.byIdx[spec.To-1] != nil {
		moved := make([]string, 0, len(cut.phase))
		for k := range cut.phase {
			moved = append(moved, k)
		}
		sort.Strings(moved)
		for _, k := range moved {
			if cut.newRing.Partition(k) != spec.To-1 {
				continue
			}
			if err := rt.ensureSpliced(cut, k); err != nil {
				return fail(err)
			}
		}
	}
	rt.cut.Store(cut)
	rt.reg.Gauge("shard.cutover_active").Set(1)
	for _, pt := range rt.parts {
		go pt.run()
	}
	return rt, nil
}

// openOpts parameterizes openPartitionAt for mid-cutover opens; the zero
// value opens a partition normally under the runtime's configured layout.
type openOpts struct {
	// layout is the shard count to open under (0 = cfg.Shards).
	layout int
	// ring is the ownership ring the worker checks records against
	// (nil = the runtime's partitioner).
	ring *Partitioner
	// acceptStamp, when set, overrides which persisted layout stamps are
	// acceptable (default: 0 or layout).
	acceptStamp func(int) bool
	// keepSpliced loads the state's live-cutover Spliced markers.
	keepSpliced bool
}

// openPartitionAt assembles one shard (no worker started yet).
func (rt *Runtime) openPartitionAt(i int, o openOpts) (*partition, error) {
	cfg := rt.cfg
	if o.layout == 0 {
		o.layout = cfg.Shards
	}
	if o.ring == nil {
		o.ring = rt.part
	}
	dir := partitionDir(cfg.Dir, i)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	if cfg.ShardMetrics != nil {
		if r := cfg.ShardMetrics(i); r != nil {
			reg = r
		}
	}
	var faults *fault.Registry
	if cfg.ShardFaults != nil {
		faults = cfg.ShardFaults(i)
	}

	bcfg := cfg.Broker
	bcfg.Dir = dir
	bcfg.Metrics = reg
	bcfg.Faults = faults
	bk, err := broker.Open(bcfg)
	if err != nil {
		return nil, err
	}

	st, err := loadState(statePath(dir))
	if err != nil {
		bk.Close()
		return nil, err
	}
	acceptable := o.acceptStamp
	if acceptable == nil {
		acceptable = func(s int) bool { return s == 0 || s == o.layout }
	}
	if !acceptable(st.Partitions) {
		bk.Close()
		return nil, fmt.Errorf("shard: partition %s was laid out for %d shards but the runtime is opening %d; "+
			"run `logsynergy rebalance -from %d -to %d` over the broker directory first",
			dir, st.Partitions, cfg.Shards, st.Partitions, cfg.Shards)
	}

	// Each partition scores with the shared read-only model but owns its
	// event-table clone and its own parser, so online extension never
	// crosses shard boundaries. A v2 state file carries the parser's full
	// template groups (offline seeds plus everything the stream taught it)
	// — import them verbatim so restored ids keep their meaning. Legacy
	// state carries none; replay the offline templates as before.
	det := core.NewDetector(cfg.Detector.Model, cfg.Detector.Table.Clone())
	det.Now = cfg.Detector.Now
	parser := drain.NewDefault()
	if len(st.Events) > 0 {
		if err := parser.Import(st.Events); err != nil {
			bk.Close()
			return nil, fmt.Errorf("restoring parser state: %w", err)
		}
	} else {
		for _, in := range det.Table.Interps {
			parser.Parse(in.Template)
		}
	}

	pcfg := cfg.Pipeline
	pcfg.Metrics = reg
	pcfg.Faults = faults
	pt := &partition{
		idx:         i,
		rt:          rt,
		dir:         dir,
		group:       cfg.Group,
		bk:          bk,
		reg:         reg,
		keyFor:      cfg.KeyFunc,
		layout:      o.layout,
		ring:        o.ring,
		commitEvery: cfg.CommitEvery,
		commitErrs:  reg.Counter("shard.commit_errors_total"),
		done:        make(chan struct{}),
	}
	pt.pipe = pipeline.New(pcfg, parser, det, rt.cache, cfg.Embedder, &faninSink{rt: rt, shard: i})
	pt.keyed = pipeline.NewKeyed(pt.pipe)
	if cfg.OnWindow != nil {
		shardIdx := i
		pt.keyed.OnWindow = func(key string, seq []int, score float64, abandoned bool) {
			cfg.OnWindow(shardIdx, key, seq, score, abandoned)
		}
	}

	// Sync the event table before touching any line: imported event ids
	// can be out of discovery order relative to the table (a rebalance
	// splices groups from other partitions), and lazy extension in the
	// feed path would mis-assign their vectors.
	if len(st.Events) > 0 {
		if err := pt.pipe.SyncTable(); err != nil {
			bk.Close()
			return nil, err
		}
	}
	pt.pipe.Library().Import(st.Patterns)
	pt.keyed.Restore(st.Tails)
	pt.restored = st.Consumed
	pt.consumed = st.Consumed
	pt.lastSaved = st.Consumed
	if o.keepSpliced && st.Cutover != nil && len(st.Cutover.Spliced) > 0 {
		pt.spliced = make(map[string]bool, len(st.Cutover.Spliced))
		for _, k := range st.Cutover.Spliced {
			pt.spliced[k] = true
		}
	}

	cons, err := bk.Consumer(cfg.Group)
	if err != nil {
		bk.Close()
		return nil, err
	}
	cons.AutoCommit = false // the worker commits explicitly, tails first
	pt.cons = cons
	pt.ackBase = cons.Position() - 1
	pt.lastCommitted = pt.ackBase
	if pt.consumed < pt.ackBase {
		// A state file older than the committed offset (e.g. wiped) —
		// never ack backwards.
		pt.consumed = pt.ackBase
		pt.restored = pt.ackBase
		pt.lastSaved = pt.ackBase
	}
	return pt, nil
}

// run is the partition worker: tail the consumer, demultiplex by key,
// feed the keyed pipeline, and commit (state file, then offsets) on the
// configured cadence, whenever the backlog drains, and at end of stream.
// During a live cutover the worker additionally parks before unreleased
// moving keys (destination side) and skips double-written and
// foreign-owned records (both sides).
func (pt *partition) run() {
	defer close(pt.done)
	for {
		if pt.caughtUp() {
			pt.feedMu.Lock()
			pt.flushCommit()
			pt.feedMu.Unlock()
			pt.idle.Store(true)
		}
		line, ok := pt.cons.Next()
		if !ok {
			break
		}
		pt.idle.Store(false)
		key := pt.keyFor(line)
		if !pt.awaitRelease(key) {
			// Shut down while parked mid-cutover: the record was never
			// consumed, so the resumed cutover redelivers it.
			break
		}
		off := pt.cons.Position() - 1
		pt.feedMu.Lock()
		if off > pt.consumed {
			pt.consumed = off
		}
		if off <= pt.restored {
			// Redelivered record already reflected in the restored window
			// tails; feeding it again would double-count the window phase.
			pt.feedMu.Unlock()
			continue
		}
		if !pt.shouldFeed(key, off) {
			// Double-written (the destination's WAL copy is the one that
			// counts) or no longer owned after a finished cutover.
			pt.feedMu.Unlock()
			continue
		}
		pt.keyed.Feed(key, line)
		pt.sinceCommit++
		if pt.sinceCommit >= pt.commitEvery {
			pt.flushCommit()
		}
		pt.feedMu.Unlock()
	}
	if !pt.killed.Load() {
		// End of stream (intake closed and backlog drained, or consumer
		// failure): flush the pending batch and commit this partition's
		// offset — every partition commits its own offset on shutdown,
		// not just the last one to drain.
		pt.feedMu.Lock()
		pt.flushCommit()
		pt.feedMu.Unlock()
	}
	if err := pt.cons.Err(); err != nil {
		pt.setErr(err)
	}
	pt.idle.Store(true)
}

// shouldFeed decides whether a consumed record enters detection. Called
// under feedMu. A donor mid-cutover feeds a moving key only below its
// freeze point — records at or above it are double-written, and the
// destination's copy is authoritative. Outside that case the ownership
// ring decides: a record whose key no longer routes here (a
// double-written donor copy redelivered after the cutover finished, or
// a brand-new moving key that only ever double-wrote) is skipped.
func (pt *partition) shouldFeed(key string, off uint64) bool {
	if cut := pt.rt.cut.Load(); cut != nil && pt.idx < cut.from && cut.moving(key) {
		return off < cut.freeze[pt.idx]
	}
	return pt.ring.Partition(key) == pt.idx
}

// awaitRelease gates the destination's consumer during a live cutover:
// a record for a moving key that has not been released yet parks the
// worker until the key releases, the cutover finishes, or the runtime
// shuts down (false = stop without consuming the record). The worker
// flushes and commits before parking, so a crash while parked resumes
// with nothing to replay.
func (pt *partition) awaitRelease(key string) bool {
	cut := pt.rt.cut.Load()
	if cut == nil || pt.idx != cut.to-1 || !cut.moving(key) {
		return true
	}
	cut.mu.Lock()
	if cut.finished || cut.phase[key] >= phaseReleased {
		closed := cut.closed
		cut.mu.Unlock()
		return !closed
	}
	if cut.closed {
		cut.mu.Unlock()
		return false
	}
	cut.mu.Unlock()

	pt.feedMu.Lock()
	pt.flushCommit()
	pt.feedMu.Unlock()
	pt.gated.Store(true)
	defer pt.gated.Store(false)

	cut.mu.Lock()
	defer cut.mu.Unlock()
	for !cut.finished && !cut.closed && cut.phase[key] < phaseReleased {
		cut.cond.Wait()
	}
	return !cut.closed
}

// caughtUp reports whether the worker has consumed everything appended.
func (pt *partition) caughtUp() bool {
	return pt.cons.Position() >= pt.bk.NextOffset()
}

// flushCommit scores pending windows, persists the resume state, and
// commits the consumer offset — in that order, so a crash between the
// two leaves the offset behind the tails (the worker skips the
// redelivered prefix on restart). Commit failures are counted and
// retried on the next cadence; consumption continues (at-least-once).
// Called under feedMu.
func (pt *partition) flushCommit() error {
	pt.keyed.Flush()
	pt.sinceCommit = 0
	if pt.consumed == pt.lastSaved && pt.consumed == pt.lastCommitted && !pt.forceSave {
		return nil
	}
	if pt.consumed != pt.lastSaved || pt.forceSave {
		st := partitionState{
			Partitions: pt.layout,
			Consumed:   pt.consumed,
			Tails:      pt.keyed.Tails(),
			Events:     pt.pipe.Parser().Export(),
			Patterns:   pt.pipe.Library().Export(),
			Cutover:    pt.cutoverRecord(),
		}
		if err := saveState(statePath(pt.dir), st); err != nil {
			pt.commitErrs.Inc()
			pt.setErr(err)
			return err
		}
		pt.lastSaved = pt.consumed
		pt.forceSave = false
	}
	// The state file can be up to date while the broker offset trails it —
	// e.g. a restart that skipped a redelivered prefix. Commit the offset
	// whenever it lags what the tails already reflect.
	pt.cons.Ack(pt.consumed - pt.ackBase)
	if err := pt.cons.Commit(); err != nil {
		pt.commitErrs.Inc()
		pt.setErr(err)
		return err
	}
	pt.lastCommitted = pt.consumed
	return nil
}

// cutoverRecord renders the partition's live-cutover state record
// (nil outside a cutover). Called under feedMu.
func (pt *partition) cutoverRecord() *cutoverState {
	if len(pt.spliced) == 0 {
		return nil
	}
	keys := make([]string, 0, len(pt.spliced))
	for k := range pt.spliced {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return &cutoverState{Spliced: keys}
}

// setErr records the first worker error.
func (pt *partition) setErr(err error) {
	pt.errMu.Lock()
	if pt.err == nil {
		pt.err = err
	}
	pt.errMu.Unlock()
}

// workerErr returns the recorded worker error, if any.
func (pt *partition) workerErr() error {
	pt.errMu.Lock()
	defer pt.errMu.Unlock()
	return pt.err
}

// finished reports whether the worker goroutine has exited.
func (pt *partition) finished() bool {
	select {
	case <-pt.done:
		return true
	default:
		return false
	}
}

// drained reports whether this partition has nothing left to do: its
// worker exited, or it is idle (flushed + committed) with an empty
// backlog.
func (pt *partition) drained() bool {
	if pt.finished() {
		return true
	}
	return pt.idle.Load() && pt.bk.Lag(pt.group) == 0 && pt.caughtUp()
}

// faninSink delivers one partition's reports into the shared sink,
// serialized across partitions. Per-key report order needs no extra
// work: a key is pinned to one partition, and that partition delivers
// its reports in window-completion order on a single goroutine.
type faninSink struct {
	rt    *Runtime
	shard int
}

// Notify implements pipeline.Sink.
func (f *faninSink) Notify(r *core.Report) {
	f.rt.faninMu.Lock()
	defer f.rt.faninMu.Unlock()
	f.rt.faninTotal.Inc()
	f.rt.cfg.Sink.Notify(r)
}

// TryNotify implements pipeline.FallibleSink, propagating delivery
// errors (and thus retries, breakers and spill) when the merged sink
// reports them.
func (f *faninSink) TryNotify(r *core.Report) error {
	f.rt.faninMu.Lock()
	defer f.rt.faninMu.Unlock()
	if fs, ok := f.rt.cfg.Sink.(pipeline.FallibleSink); ok {
		if err := fs.TryNotify(r); err != nil {
			return err
		}
		f.rt.faninTotal.Inc()
		return nil
	}
	f.rt.faninTotal.Inc()
	f.rt.cfg.Sink.Notify(r)
	return nil
}

// Shards returns the partition count.
func (rt *Runtime) Shards() int {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	return rt.cfg.Shards
}

// Partitioner exposes the key → partition mapping (diagnostics, tests).
func (rt *Runtime) Partitioner() *Partitioner {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	return rt.part
}

// Cache exposes the shared interpretation cache.
func (rt *Runtime) Cache() *InterpCache { return rt.cache }

// PartitionFor returns the partition index owning key.
func (rt *Runtime) PartitionFor(key string) int {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	return rt.part.Partition(key)
}

// partitions snapshots the partition slice under the route lock.
func (rt *Runtime) partitions() []*partition {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	return rt.parts
}

// partitionAt returns the open partition with index i, or nil when the
// runtime does not serve it (a Subset runtime).
func (rt *Runtime) partitionAt(i int) *partition {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	if i < 0 || i >= len(rt.byIdx) {
		return nil
	}
	return rt.byIdx[i]
}

// Owned returns the partition indices this runtime serves, ascending.
// Without Config.Subset that is every partition; AdoptPartition extends
// the set at runtime.
func (rt *Runtime) Owned() []int {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	own := make([]int, 0, len(rt.parts))
	for i, pt := range rt.byIdx {
		if pt != nil {
			own = append(own, i)
		}
	}
	return own
}

// Owns reports whether this runtime serves partition i.
func (rt *Runtime) Owns(i int) bool { return rt.partitionAt(i) != nil }

// ShardStats returns partition i's pipeline stats (zero when the
// runtime does not serve partition i).
func (rt *Runtime) ShardStats(i int) pipeline.Stats {
	pt := rt.partitionAt(i)
	if pt == nil {
		return pipeline.Stats{}
	}
	return pt.pipe.Stats()
}

// PartitionHealth is one partition's liveness row in a /healthz body:
// how far its consumer trails its WAL and whether its worker is idle.
type PartitionHealth struct {
	Partition  int    `json:"partition"`
	Lag        uint64 `json:"lag"`
	NextOffset uint64 `json:"next_offset"`
	Committed  uint64 `json:"committed"`
	// Consumed is the highest offset handed to the partition's worker —
	// a live cutover's coordinator compares it against the donor's
	// freeze offset to know when the key tails are final.
	Consumed uint64 `json:"consumed"`
	Idle     bool   `json:"idle"`
}

// Health reports per-partition lag/backlog for every partition this
// runtime serves, ascending by partition index — the payload a cluster
// node's /healthz endpoint exposes to the front router's prober.
func (rt *Runtime) Health() []PartitionHealth {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	out := make([]PartitionHealth, 0, len(rt.parts))
	for i, pt := range rt.byIdx {
		if pt == nil {
			continue
		}
		pt.feedMu.Lock()
		consumed := pt.consumed
		pt.feedMu.Unlock()
		out = append(out, PartitionHealth{
			Partition:  i,
			Lag:        pt.bk.Lag(pt.group),
			NextOffset: pt.bk.NextOffset(),
			Committed:  pt.bk.Committed(pt.group),
			Consumed:   consumed,
			Idle:       pt.idle.Load(),
		})
	}
	return out
}

// AdoptPartition opens partition idx through the crash-recovery path —
// WAL replay past the committed offset, window tails and parser state
// restored from shard-state.json — and starts its worker. Cluster
// failover uses it: a standby node adopts a dead node's partitions off
// shared storage and resumes exactly where the dead node's last commit
// left off. The partition must belong to the runtime's layout and not
// already be open here; fencing against the previous owner is the
// caller's job (the cluster layer's epoch lease).
func (rt *Runtime) AdoptPartition(idx int) error {
	rt.routeMu.Lock()
	defer rt.routeMu.Unlock()
	if idx < 0 || idx >= len(rt.byIdx) {
		return fmt.Errorf("shard: partition %d out of range for %d shards", idx, len(rt.byIdx))
	}
	if rt.byIdx[idx] != nil {
		return fmt.Errorf("shard: partition %d is already open in this runtime", idx)
	}
	pt, err := rt.openPartitionAt(idx, openOpts{})
	if err != nil {
		return fmt.Errorf("shard: adopting partition %d: %w", idx, err)
	}
	sweepSplices(pt.dir)
	rt.parts = append(rt.parts, pt)
	rt.byIdx[idx] = pt
	rt.reg.Gauge("shard.partitions_owned").Add(1)
	go pt.run()
	return nil
}

// DropPartition closes partition idx crash-style — no final flush, no
// state persist, no offset commit — and removes it from the runtime.
// This is the fencing half of cluster failover: a node a newer manifest
// epoch deposes must stop touching the partition's files on shared
// storage immediately, because the new owner's crash recovery is about
// to replay them. Whatever the last flushCommit persisted is exactly
// what the adopter resumes from, so dropping loses nothing that was
// ever acknowledged; a graceful final commit here would instead race
// the adopter's writes. Lines keyed to a dropped partition answer
// ErrNotAssigned from the moment it returns.
func (rt *Runtime) DropPartition(idx int) error {
	rt.routeMu.Lock()
	if idx < 0 || idx >= len(rt.byIdx) || rt.byIdx[idx] == nil {
		rt.routeMu.Unlock()
		return fmt.Errorf("shard: partition %d is not open in this runtime", idx)
	}
	pt := rt.byIdx[idx]
	rt.byIdx[idx] = nil
	// Copy-on-write: partitions() hands the parts slice out without the
	// lock, so never mutate the published backing array.
	parts := make([]*partition, 0, len(rt.parts)-1)
	for _, p := range rt.parts {
		if p != pt {
			parts = append(parts, p)
		}
	}
	rt.parts = parts
	rt.routeMu.Unlock()
	pt.killed.Store(true)
	pt.bk.Kill()
	<-pt.done
	pt.cons.Close()
	rt.reg.Gauge("shard.partitions_owned").Add(-1)
	return nil
}

// Stats sums pipeline stats across every partition.
func (rt *Runtime) Stats() pipeline.Stats {
	var total pipeline.Stats
	for _, pt := range rt.partitions() {
		s := pt.pipe.Stats()
		total.LinesCollected += s.LinesCollected
		total.LinesDropped += s.LinesDropped
		total.SequencesFormed += s.SequencesFormed
		total.PatternHits += s.PatternHits
		total.PatternMisses += s.PatternMisses
		total.PatternEvictions += s.PatternEvictions
		total.Anomalies += s.Anomalies
		total.NewEvents += s.NewEvents
		total.Retries += s.Retries
		total.Degraded += s.Degraded
		total.Spilled += s.Spilled
		total.SpillDropped += s.SpillDropped
		total.BreakerOpens += s.BreakerOpens
		total.SinkErrors += s.SinkErrors
		total.ParseFailures += s.ParseFailures
		total.DetectFailures += s.DetectFailures
	}
	return total
}

// Committed returns partition i's committed consumer offset (0 when the
// runtime does not serve partition i).
func (rt *Runtime) Committed(i int) uint64 {
	pt := rt.partitionAt(i)
	if pt == nil {
		return 0
	}
	return pt.bk.Committed(rt.cfg.Group)
}

// Snapshot merges the runtime registry with every partition's registry.
// Each partition's counters and gauges additionally appear under a
// shard<i>. prefix, so a scrape shows both fleet totals and per-shard
// breakdowns.
func (rt *Runtime) Snapshot() obs.Snapshot {
	merged := rt.reg.Snapshot()
	for _, pt := range rt.partitions() {
		s := pt.reg.Snapshot()
		merged = merged.Merge(s)
		prefix := fmt.Sprintf("shard%d.", pt.idx)
		for k, v := range s.Counters {
			merged.Counters[prefix+k] = v
		}
		for k, v := range s.Gauges {
			merged.Gauges[prefix+k] = v
		}
	}
	return merged
}

// Drain blocks until every partition is drained — its worker exited, or
// it is idle with an empty backlog and a committed offset — or ctx ends.
// Appends arriving during Drain extend the wait; a partition gated on an
// unreleased moving key mid-cutover counts as drained once parked (its
// position is committed).
func (rt *Runtime) Drain(ctx context.Context) error {
	for {
		all := true
		for _, pt := range rt.partitions() {
			if !pt.drained() && !pt.gated.Load() {
				all = false
				break
			}
		}
		if all {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// CloseIntake stops accepting appends on every partition. Workers drain
// their backlogs, flush, commit, and exit — the first half of a graceful
// shutdown.
func (rt *Runtime) CloseIntake() {
	for _, pt := range rt.partitions() {
		pt.bk.CloseIntake()
	}
}

// Close shuts the runtime down gracefully: intake closes, every worker
// drains and commits its own partition's offset, then consumers and
// brokers close. It returns the first error encountered. Closing mid
// live-cutover is safe: parked workers wake and exit without consuming,
// the journal stays in place, and the next Open resumes the cutover.
func (rt *Runtime) Close() error {
	rt.CloseIntake()
	if cut := rt.cut.Load(); cut != nil {
		cut.interrupt()
	}
	parts := rt.partitions()
	for _, pt := range parts {
		<-pt.done
	}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, pt := range parts {
		keep(pt.workerErr())
	}
	keep(rt.closePartitions())
	return firstErr
}

// Kill simulates a crash: every worker stops without flushing or
// committing, and every broker drops its handles with no final fsync or
// offset persist. Whatever the last flushCommit persisted is what the
// next Open resumes from.
func (rt *Runtime) Kill() {
	if cut := rt.cut.Load(); cut != nil {
		cut.interrupt()
	}
	parts := rt.partitions()
	for _, pt := range parts {
		pt.killed.Store(true)
	}
	for _, pt := range parts {
		pt.bk.Kill()
	}
	for _, pt := range parts {
		<-pt.done
		pt.cons.Close()
	}
}

// closePartitions releases consumers and brokers (idempotent).
func (rt *Runtime) closePartitions() error {
	var firstErr error
	for _, pt := range rt.partitions() {
		if pt.cons != nil {
			pt.cons.Close()
		}
		if err := pt.bk.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
