package shard

import (
	"sync"

	"logsynergy/internal/lei"
	"logsynergy/internal/obs"
)

// InterpCache is the shared interpretation cache: a memoizing,
// singleflight-deduplicated lei.Interpreter that every partition
// pipeline uses in place of the raw interpreter. LEI rendering is the
// most expensive per-template operation in the online path (a real
// deployment calls an LLM), and hot event templates recur across
// source systems — so when several partitions discover the same
// template concurrently, exactly one renders it and the rest wait for
// that result. Interpretations are deterministic per (hint, template),
// so which partition wins the race never affects output.
type InterpCache struct {
	inner lei.Interpreter

	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits   *obs.Counter // answered from a completed entry
	misses *obs.Counter // computed by this call (== inner interpreter calls)
	waits  *obs.Counter // deduplicated against another caller's in-flight render
}

// cacheEntry is one template's render slot. done closes when in is
// valid; waiters block on it without holding the cache lock.
type cacheEntry struct {
	done chan struct{}
	in   lei.Interpretation
}

// NewInterpCache wraps inner with memoization and singleflight dedup,
// registering shard.cache_* counters on reg (nil = obs.Default()).
func NewInterpCache(inner lei.Interpreter, reg *obs.Registry) *InterpCache {
	if reg == nil {
		reg = obs.Default()
	}
	return &InterpCache{
		inner:   inner,
		entries: make(map[string]*cacheEntry),
		hits:    reg.Counter("shard.cache_hits_total"),
		misses:  reg.Counter("shard.cache_misses_total"),
		waits:   reg.Counter("shard.cache_dedup_waits_total"),
	}
}

// Interpret implements lei.Interpreter. The first caller for a template
// renders it through the inner interpreter; concurrent callers for the
// same template wait for that render; later callers hit the memo.
func (c *InterpCache) Interpret(systemHint, template string) lei.Interpretation {
	key := systemHint + "\x00" + template
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		select {
		case <-e.done:
			c.hits.Inc()
		default:
			c.waits.Inc()
			<-e.done
		}
		return e.in
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	c.misses.Inc()
	defer func() {
		// A panicking inner interpreter must not strand waiters on done:
		// drop the poisoned entry, release them with the zero value, and
		// let the pipeline's panic containment see the original panic.
		if r := recover(); r != nil {
			c.mu.Lock()
			delete(c.entries, key)
			c.mu.Unlock()
			close(e.done)
			panic(r)
		}
	}()
	e.in = c.inner.Interpret(systemHint, template)
	close(e.done)
	return e.in
}

// Size returns the number of cached templates (including in-flight
// renders).
func (c *InterpCache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the hit / miss / dedup-wait counts. misses equals the
// number of inner interpreter calls ever made — the "rendered once"
// guarantee is misses == distinct templates.
func (c *InterpCache) Stats() (hits, misses, waits int64) {
	return c.hits.Value(), c.misses.Value(), c.waits.Value()
}
