package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"

	"logsynergy/internal/broker"
	"logsynergy/internal/drain"
	"logsynergy/internal/pipeline"
)

// Rebalancing changes the partition count of a quiesced broker directory
// without losing any per-key state. Growing a consistent-hash ring from
// N to N+1 moves a ~1/(N+1) slice of keys onto the new partition; each
// moved key must arrive with its exact window tail (so its window phase
// survives the move), and the destination must know every template group
// and pattern verdict the key's history taught its old partition (so the
// first post-move line neither re-mints drain groups nor re-scores
// already-cached windows).
//
// The move is crash-safe by construction, with one commit point:
//
//  1. Stage: every partition's post-rebalance state is written beside
//     the live one as shard-state.json.next (atomic + fsynced). The
//     live files are untouched — a crash here leaves the old layout
//     fully intact.
//  2. Commit: rebalance-manifest.json is written at the root (atomic +
//     fsynced). The manifest's existence IS the commit: from this
//     instant the rebalance is decided.
//  3. Install: each staged file renames over the live one; the manifest
//     is removed last.
//
// recoverRebalance — run by both Rebalance itself and every Runtime
// Open — completes the protocol from any crash point: manifest present
// means roll forward (install the remaining staged files), manifest
// absent means roll back (discard stray staged files). Either way every
// partition ends on one consistent layout; a key is never half-moved.
//
// The partition-count stamp each state file carries closes the loop: a
// runtime opened with the wrong Shards refuses loudly instead of
// silently routing moved keys to partitions that no longer own them.

// rebalanceManifestName is the commit record at the runtime root.
const rebalanceManifestName = "rebalance-manifest.json"

// rebalanceCopyMarker marks a destination directory whose copy from the
// source layout has not finished; opening one is refused.
const rebalanceCopyMarker = "rebalance-copy-incomplete"

// stagedStateSuffix is appended to stateFileName for staged post-
// rebalance states.
const stagedStateSuffix = ".next"

// rebalanceManifest is the commit record: which partitions have staged
// states waiting to be installed.
type rebalanceManifest struct {
	Version    int   `json:"version"`
	From       int   `json:"from"`
	To         int   `json:"to"`
	Partitions []int `json:"partitions"`
}

// RebalanceReport summarizes a completed rebalance.
type RebalanceReport struct {
	// From and To are the old and new partition counts.
	From, To int
	// Dir is the directory holding the rebalanced layout.
	Dir string
	// MovedKeys is how many stream keys changed partitions.
	MovedKeys int
	// MovedLines is the total number of window-tail lines that moved
	// with them.
	MovedLines int
	// AlreadyBalanced reports a no-op: every partition was already
	// stamped with the target layout (e.g. a re-run after a crash that
	// had passed the commit point).
	AlreadyBalanced bool
	// Duration is the wall-clock time the rebalance took.
	Duration time.Duration
}

// rebalanceOpts is the full parameter set; tests reach the crash hook
// through it.
type rebalanceOpts struct {
	oldDir string // the live layout
	newDir string // "" or == oldDir: rebalance in place; else: copy first
	oldN   int
	newN   int
	group  string // consumer group checked for quiescence (default "detector")
	vnodes int    // ring vnodes; must match the runtime's Config.Vnodes
	// crash, when set, is invoked at named protocol points ("staged",
	// "committed"); returning an error aborts exactly there, simulating
	// a crash for the recovery tests.
	crash func(phase string) error
}

// Rebalance re-partitions a quiesced layout from oldN to newN shards.
// With newDir empty (or equal to oldDir) the layout is rewritten in
// place; otherwise the layout is first copied to newDir and rebalanced
// there, leaving oldDir untouched as a rollback. The broker must be
// quiesced: no runtime open on it, and every partition's WAL fully
// consumed and reflected in its persisted state.
func Rebalance(oldDir, newDir string, oldN, newN int) (*RebalanceReport, error) {
	return rebalanceRun(rebalanceOpts{oldDir: oldDir, newDir: newDir, oldN: oldN, newN: newN})
}

// RebalanceGroup is Rebalance with an explicit consumer group for the
// quiescence check (the group the detector runtime reads as; Rebalance
// assumes the default "detector").
func RebalanceGroup(oldDir, newDir string, oldN, newN int, group string) (*RebalanceReport, error) {
	return rebalanceRun(rebalanceOpts{oldDir: oldDir, newDir: newDir, oldN: oldN, newN: newN, group: group})
}

// rebalanceRun implements Rebalance with injectable crash points.
func rebalanceRun(o rebalanceOpts) (*RebalanceReport, error) {
	start := time.Now()
	if o.oldDir == "" {
		return nil, fmt.Errorf("shard: rebalance needs the broker directory")
	}
	if o.oldN <= 0 || o.newN <= 0 {
		return nil, fmt.Errorf("shard: partition counts must be positive (from %d to %d)", o.oldN, o.newN)
	}
	if o.oldN == o.newN {
		return nil, fmt.Errorf("shard: already at %d partitions; nothing to rebalance", o.oldN)
	}
	if o.group == "" {
		o.group = "detector"
	}
	if o.vnodes <= 0 {
		o.vnodes = DefaultVirtualNodes
	}

	root := o.oldDir
	if o.newDir != "" && o.newDir != o.oldDir {
		if err := copyLayout(o.oldDir, o.newDir); err != nil {
			return nil, err
		}
		root = o.newDir
	}
	// A live cutover owns the directory until its journal is gone; an
	// offline rebalance running under it would splice from tails the
	// serving runtime is still moving.
	if j, err := loadJournal(root); err != nil {
		return nil, err
	} else if j != nil {
		return nil, fmt.Errorf("shard: %s has a live cutover to %d partitions in progress (%s present); "+
			"reopen the runtime at %d shards to let it finish before rebalancing offline", root, j.To, liveJournalName, j.To)
	}
	// Finish whatever a previous attempt left behind before reading any
	// state: roll a committed rebalance forward, discard an uncommitted
	// one.
	if err := recoverRebalance(root); err != nil {
		return nil, err
	}

	maxN := o.oldN
	if o.newN > maxN {
		maxN = o.newN
	}
	states := make([]partitionState, maxN)
	dirExists := make([]bool, maxN)
	for i := 0; i < maxN; i++ {
		dir := partitionDir(root, i)
		if _, err := os.Stat(dir); err != nil {
			if os.IsNotExist(err) {
				states[i] = partitionState{Version: stateVersion}
				continue
			}
			return nil, fmt.Errorf("shard: inspecting partition %d: %w", i, err)
		}
		dirExists[i] = true
		st, err := loadState(statePath(dir))
		if err != nil {
			return nil, err
		}
		states[i] = st
	}

	// Re-running after a crash that had passed the commit point lands
	// here with every partition already stamped for the target layout:
	// that is a success, not a conflict.
	if done, stamped := alreadyOnLayout(states, o.newN); done && stamped {
		return &RebalanceReport{From: o.oldN, To: o.newN, Dir: root, AlreadyBalanced: true, Duration: time.Since(start)}, nil
	}
	for i := 0; i < o.oldN; i++ {
		if states[i].Partitions != 0 && states[i].Partitions != o.oldN {
			return nil, fmt.Errorf("shard: partition %d is stamped for %d shards, not the %d this rebalance starts from",
				i, states[i].Partitions, o.oldN)
		}
	}

	// Quiescence: every record appended to a partition's WAL must be
	// reflected in its persisted state. Unconsumed records belong to
	// keys that may be about to move — rebalancing under them would
	// strand their lines on the wrong partition.
	for i := 0; i < o.oldN; i++ {
		if !dirExists[i] {
			continue
		}
		bk, err := broker.Open(broker.Config{Dir: partitionDir(root, i)})
		if err != nil {
			return nil, fmt.Errorf("shard: quiesce check for partition %d: %w", i, err)
		}
		walTail := bk.NextOffset() - 1
		bk.Close()
		if states[i].Consumed < walTail {
			return nil, fmt.Errorf("shard: partition %d is not quiesced: %d WAL records past the persisted state "+
				"(drain the detector and close it cleanly before rebalancing)", i, walTail-states[i].Consumed)
		}
		if states[i].Consumed > walTail {
			return nil, fmt.Errorf("shard: partition %d 's persisted state is ahead of its WAL (%d > %d); "+
				"the WAL appears truncated — refusing to rebalance over data loss", i, states[i].Consumed, walTail)
		}
	}

	// The moved-key set: every key whose window tail lives on a
	// partition the new ring no longer routes it to.
	newRing := NewPartitionerVnodes(o.newN, o.vnodes)
	movedOut := make([]map[string]bool, maxN)
	movedIn := make([]map[string]pipeline.WindowTail, maxN)
	movedKeys, movedLines := 0, 0
	for i := 0; i < o.oldN; i++ {
		for key, tail := range states[i].Tails {
			dest := newRing.Partition(key)
			if dest == i {
				continue
			}
			movedKeys++
			movedLines += len(tail.Lines)
			if movedOut[i] == nil {
				movedOut[i] = make(map[string]bool)
			}
			movedOut[i][key] = true
			if movedIn[dest] == nil {
				movedIn[dest] = make(map[string]pipeline.WindowTail)
			}
			movedIn[dest][key] = tail
		}
	}

	// Event-space donors. Growth: a brand-new partition inherits the
	// union of every old partition's template groups and pattern
	// verdicts — any old partition may have donated keys to it, and a
	// moved key's entire parse history lives on its donor. Shrink: every
	// survivor inherits the union of the retired partitions' spaces.
	var donorStates []partitionState
	if o.newN > o.oldN {
		donorStates = states[:o.oldN]
	} else {
		donorStates = states[o.newN:o.oldN]
	}

	staged := make([]int, 0, maxN)
	for i := 0; i < maxN; i++ {
		st := states[i]
		next := partitionState{
			Version:    stateVersion,
			Partitions: o.newN,
			Consumed:   st.Consumed,
			Tails:      make(map[string]pipeline.WindowTail, len(st.Tails)),
			Events:     st.Events,
			Patterns:   st.Patterns,
		}
		for key, tail := range st.Tails {
			if !movedOut[i][key] {
				next.Tails[key] = tail
			}
		}
		for key, tail := range movedIn[i] {
			next.Tails[key] = tail
		}
		switch {
		case o.newN > o.oldN && i >= o.oldN:
			next.Events, next.Patterns = mergeEventSpaces(nil, nil, donorStates)
		case o.newN < o.oldN && i < o.newN:
			next.Events, next.Patterns = mergeEventSpaces(st.Events, st.Patterns, donorStates)
		}
		dir := partitionDir(root, i)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("shard: creating partition directory %s: %w", dir, err)
		}
		if err := saveState(statePath(dir)+stagedStateSuffix, next); err != nil {
			return nil, fmt.Errorf("shard: staging partition %d: %w", i, err)
		}
		staged = append(staged, i)
	}
	if o.crash != nil {
		if err := o.crash("staged"); err != nil {
			return nil, err
		}
	}

	// The commit point: once the manifest is durably in place the new
	// layout is decided, and any crash from here rolls forward.
	if err := writeManifest(root, rebalanceManifest{Version: 1, From: o.oldN, To: o.newN, Partitions: staged}); err != nil {
		return nil, err
	}
	if o.crash != nil {
		if err := o.crash("committed"); err != nil {
			return nil, err
		}
	}

	// Install = the recovery roll-forward: the production crash path and
	// the happy path are the same code.
	if err := recoverRebalance(root); err != nil {
		return nil, err
	}
	return &RebalanceReport{
		From:       o.oldN,
		To:         o.newN,
		Dir:        root,
		MovedKeys:  movedKeys,
		MovedLines: movedLines,
		Duration:   time.Since(start),
	}, nil
}

// alreadyOnLayout reports whether every partition the target layout will
// open is stamped for it (done), and whether at least one stamp exists
// (stamped) — both must hold for the no-op shortcut, otherwise a pile of
// fresh unstamped directories would count as "already rebalanced".
func alreadyOnLayout(states []partitionState, newN int) (done, stamped bool) {
	done = true
	for i := 0; i < newN && i < len(states); i++ {
		switch states[i].Partitions {
		case newN:
			stamped = true
		case 0:
		default:
			return false, false
		}
	}
	return done, stamped
}

// mergeEventSpaces splices donor partitions' template groups and pattern
// verdicts into a base event space. Donor events are deduplicated by
// template: an already-known template keeps the base id (counts sum), a
// new one appends at the next id. Donor pattern sequences are translated
// id-by-id into the merged space; verdicts for patterns the base already
// caches are dropped (the base's own verdict wins), and LRU order within
// each donor is preserved.
func mergeEventSpaces(baseEvents []drain.SavedEvent, basePatterns []pipeline.PatternEntry, donors []partitionState) ([]drain.SavedEvent, []pipeline.PatternEntry) {
	events := append([]drain.SavedEvent(nil), baseEvents...)
	idByTemplate := make(map[string]int, len(events))
	for _, ev := range events {
		idByTemplate[ev.Template] = ev.ID
	}
	patterns := append([]pipeline.PatternEntry(nil), basePatterns...)
	seen := make(map[string]bool, len(patterns))
	for _, pe := range patterns {
		seen[seqKey(pe.Seq)] = true
	}
	for _, d := range donors {
		var translate map[int]int
		events, translate = mergeDonorEvents(events, idByTemplate, d.Events)
		patterns = append(patterns, translatePatterns(d.Patterns, translate, func(seq []int) bool {
			k := seqKey(seq)
			if seen[k] {
				return true
			}
			seen[k] = true
			return false
		})...)
	}
	return events, patterns
}

// mergeDonorEvents folds one donor's template groups into a merged event
// slice, returning the extended slice and the donor-id → merged-id
// translation. idByTemplate is updated in place so successive donors
// share one template namespace. Known templates keep the merged id
// (counts sum); new ones append at the next id.
func mergeDonorEvents(events []drain.SavedEvent, idByTemplate map[string]int, donor []drain.SavedEvent) ([]drain.SavedEvent, map[int]int) {
	translate := make(map[int]int, len(donor))
	for _, ev := range donor {
		if id, ok := idByTemplate[ev.Template]; ok {
			translate[ev.ID] = id
			events[id].Count += ev.Count
			continue
		}
		id := len(events)
		events = append(events, drain.SavedEvent{ID: id, Template: ev.Template, Example: ev.Example, Count: ev.Count})
		idByTemplate[ev.Template] = id
		translate[ev.ID] = id
	}
	return events, translate
}

// translatePatterns maps donor pattern verdicts through an id
// translation, dropping entries whose sequence cannot be fully
// translated and those dup reports as already present (the receiver's
// own verdict wins). Order — and therefore donor LRU order — is
// preserved.
func translatePatterns(entries []pipeline.PatternEntry, translate map[int]int, dup func(seq []int) bool) []pipeline.PatternEntry {
	out := make([]pipeline.PatternEntry, 0, len(entries))
	for _, pe := range entries {
		seq := make([]int, len(pe.Seq))
		ok := true
		for j, id := range pe.Seq {
			nid, has := translate[id]
			if !has {
				ok = false
				break
			}
			seq[j] = nid
		}
		if !ok || dup(seq) {
			continue
		}
		out = append(out, pipeline.PatternEntry{Seq: seq, Score: pe.Score})
	}
	return out
}

// seqKey renders an event-id sequence as a dedup key.
func seqKey(seq []int) string {
	var b strings.Builder
	for i, id := range seq {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(id))
	}
	return b.String()
}

// partitionDir renders partition i's directory under root.
func partitionDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("p%d", i))
}

// PartitionDir renders partition i's WAL directory under root — the
// cluster layer uses it to stake epoch leases in partition directories
// before opening them.
func PartitionDir(root string, i int) string { return partitionDir(root, i) }

// partitionDirPattern matches partition directory names.
var partitionDirPattern = regexp.MustCompile(`^p[0-9]+$`)

// recoverRebalance completes an interrupted rebalance under root. A
// present manifest means the rebalance committed: install every staged
// state it lists (idempotent — already-installed partitions are skipped)
// and remove the manifest. No manifest means any staged files belong to
// an attempt that died before its commit point: discard them. Called by
// Rebalance and by every Runtime Open, so both layouts self-heal.
func recoverRebalance(root string) error {
	if root == "" {
		return nil
	}
	if _, err := os.Stat(filepath.Join(root, rebalanceCopyMarker)); err == nil {
		return fmt.Errorf("shard: %s is an unfinished rebalance copy (%s present); delete it and re-run the rebalance from the source directory",
			root, rebalanceCopyMarker)
	}
	mPath := filepath.Join(root, rebalanceManifestName)
	data, err := os.ReadFile(mPath)
	if os.IsNotExist(err) {
		return discardStagedStates(root)
	}
	if err != nil {
		return fmt.Errorf("shard: reading rebalance manifest: %w", err)
	}
	var m rebalanceManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("shard: corrupt rebalance manifest %s: %w", mPath, err)
	}
	for _, i := range m.Partitions {
		dir := partitionDir(root, i)
		next := statePath(dir) + stagedStateSuffix
		if _, err := os.Stat(next); os.IsNotExist(err) {
			continue // this partition's state is already installed
		}
		if err := os.Rename(next, statePath(dir)); err != nil {
			return fmt.Errorf("shard: installing staged state for partition %d: %w", i, err)
		}
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	if err := os.Remove(mPath); err != nil {
		return fmt.Errorf("shard: removing rebalance manifest: %w", err)
	}
	return syncDir(root)
}

// discardStagedStates removes staged state files from an attempt that
// never reached its commit point.
func discardStagedStates(root string) error {
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("shard: scanning %s: %w", root, err)
	}
	for _, e := range entries {
		if !e.IsDir() || !partitionDirPattern.MatchString(e.Name()) {
			continue
		}
		next := statePath(filepath.Join(root, e.Name())) + stagedStateSuffix
		if err := os.Remove(next); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("shard: discarding staged state %s: %w", next, err)
		}
	}
	return nil
}

// writeManifest durably installs the commit record.
func writeManifest(root string, m rebalanceManifest) error {
	return writeJSONFile(filepath.Join(root, rebalanceManifestName), m)
}

// writeJSONFile durably installs a small JSON control file (temp in the
// same directory + fsync + rename + directory fsync) — the shared write
// path for the offline rebalance manifest, the live-cutover journal, and
// staged per-key splice files. A failure leaves any previous file
// untouched.
func writeJSONFile(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("shard: encoding %s: %w", filepath.Base(path), err)
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("shard: creating temp file for %s: %w", base, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("shard: writing %s: %w", base, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("shard: syncing %s: %w", base, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("shard: closing %s: %w", base, err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("shard: setting mode on %s: %w", base, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("shard: installing %s: %w", base, err)
	}
	return syncDir(dir)
}

// copyLayout copies every partition directory (and the offsets and
// state files inside) from src to dst, so the rebalance can run against
// the copy while src stays untouched as a rollback. dst must not exist
// or be empty. Two kinds of crashed previous attempts are wiped and
// redone rather than refused: a directory still holding the
// incomplete-copy marker (the copy itself died), and a completed copy
// whose rebalance died after staging but before its manifest — the
// latter leaves orphaned .next files with no marker and no manifest, and
// since the source is still the untouched rollback, the stale copy holds
// nothing worth keeping.
func copyLayout(src, dst string) error {
	if entries, err := os.ReadDir(dst); err == nil {
		marker := false
		for _, e := range entries {
			if e.Name() == rebalanceCopyMarker {
				marker = true
			}
		}
		switch {
		case marker:
			if err := os.RemoveAll(dst); err != nil {
				return fmt.Errorf("shard: clearing crashed rebalance copy %s: %w", dst, err)
			}
		case len(entries) > 0 && crashedPreCommitCopy(dst, entries):
			if err := os.RemoveAll(dst); err != nil {
				return fmt.Errorf("shard: clearing crashed rebalance copy %s: %w", dst, err)
			}
		case len(entries) > 0:
			return fmt.Errorf("shard: rebalance destination %s already exists and is not empty", dst)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("shard: inspecting rebalance destination %s: %w", dst, err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return fmt.Errorf("shard: creating rebalance destination %s: %w", dst, err)
	}
	markerPath := filepath.Join(dst, rebalanceCopyMarker)
	if err := os.WriteFile(markerPath, []byte("copy in progress\n"), 0o644); err != nil {
		return fmt.Errorf("shard: writing copy marker: %w", err)
	}
	if err := syncDir(dst); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return fmt.Errorf("shard: reading rebalance source %s: %w", src, err)
	}
	for _, e := range entries {
		if !e.IsDir() || !partitionDirPattern.MatchString(e.Name()) {
			continue
		}
		if err := copyTree(filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())); err != nil {
			return err
		}
	}
	if err := os.Remove(markerPath); err != nil {
		return fmt.Errorf("shard: removing copy marker: %w", err)
	}
	return syncDir(dst)
}

// crashedPreCommitCopy reports whether dst is recognizably a rebalance
// copy that died after staging but before its commit point: no manifest
// at the root, every entry a partition directory, and at least one
// orphaned staged state inside. Anything else — stray files, a present
// manifest (recoverRebalance's job), partition dirs with no staging
// debris — is treated as data and refused by the caller.
func crashedPreCommitCopy(dst string, entries []os.DirEntry) bool {
	orphaned := false
	for _, e := range entries {
		if !e.IsDir() || !partitionDirPattern.MatchString(e.Name()) {
			return false
		}
		next := statePath(filepath.Join(dst, e.Name())) + stagedStateSuffix
		if _, err := os.Stat(next); err == nil {
			orphaned = true
		}
	}
	return orphaned
}

// copyTree copies a directory tree, fsyncing each copied file.
func copyTree(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return fmt.Errorf("shard: creating %s: %w", dst, err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return fmt.Errorf("shard: reading %s: %w", src, err)
	}
	for _, e := range entries {
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := copyTree(s, d); err != nil {
				return err
			}
			continue
		}
		if err := copyFile(s, d); err != nil {
			return err
		}
	}
	return syncDir(dst)
}

// copyFile copies one file and fsyncs the copy.
func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("shard: opening %s: %w", src, err)
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("shard: creating %s: %w", dst, err)
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return fmt.Errorf("shard: copying %s: %w", src, err)
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return fmt.Errorf("shard: syncing %s: %w", dst, err)
	}
	return out.Close()
}
