package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
)

// The live-cutover proof: fixed-seed multi-key traffic keeps flowing
// while the fleet grows 2→3 in place, and the combined output is
// bit-identical to the unsharded keyed reference — per-key score
// sequences score by score, alert multisets signature by signature.
// Traffic is injected from the cutover's own hook points, so "under
// traffic" is deterministic, not a race: batches land exactly at
// double-write start, mid-pause, and first release. The suite further
// proves non-moving keys never stall (their watermarks and score counts
// advance while the cutover is paused), double-written records are
// never detected twice (offset rollback redelivers them into the
// skip-prefix), and a crash at every per-key phase resumes on exactly
// one layout per key.

// liveMovingKeys splits keys by whether the 2→3 growth moves them.
func liveMovingKeys(keys []string) (moving, staying []string) {
	oldRing, newRing := NewPartitioner(2), NewPartitioner(3)
	for _, k := range keys {
		if oldRing.Partition(k) != newRing.Partition(k) {
			moving = append(moving, k)
		} else {
			staying = append(staying, k)
		}
	}
	return moving, staying
}

// liveNewMovingKey finds a key outside the fixture set that the 2→3
// growth moves — introduced only mid-cutover, it exercises the
// straggler path: no donor tail, double-written only, released by the
// finish flip.
func liveNewMovingKey(existing []string) string {
	oldRing, newRing := NewPartitioner(2), NewPartitioner(3)
	used := make(map[string]bool, len(existing))
	for _, k := range existing {
		used[k] = true
	}
	for i := 9001; ; i++ {
		k := strconv.Itoa(i)
		if !used[k] && oldRing.Partition(k) != newRing.Partition(k) {
			return k
		}
	}
}

func TestLiveRebalanceEquivalenceUnderTraffic(t *testing.T) {
	keys := eqKeys(12)
	moving, staying := liveMovingKeys(keys)
	if len(moving) == 0 || len(staying) == 0 {
		t.Fatalf("fixture needs both moving and staying keys (got %d moving, %d staying)", len(moving), len(staying))
	}
	newKey := liveNewMovingKey(keys)

	pre := genEqLines(42, 1500, keys)
	midA := append(genEqLines(43, 300, keys), genEqLines(44, 60, []string{newKey})...)
	stall := genEqLines(45, 80, []string{staying[0]})
	midB := genEqLines(46, 300, keys)
	post := genEqLines(47, 1500, keys)

	var stream []string
	for _, seg := range [][]string{pre, midA, stall, midB, post} {
		stream = append(stream, seg...)
	}
	ref := runReference(t, stream)
	if len(ref.alerts) == 0 {
		t.Fatal("reference produced no alerts; the equivalence comparison is vacuous")
	}
	if len(ref.scores[newKey]) == 0 {
		t.Fatalf("mid-cutover key %s scored no windows in the reference; the straggler path is untested", newKey)
	}

	dir := t.TempDir()
	h := openHarness(t, dir, 2, nil)
	h.feed(t, pre)

	stayPart := h.rt.PartitionFor(staying[0])
	fedMidA, fedMidB, stalled := false, false, false
	report, err := h.rt.liveRebalance(liveOpts{to: 3, hook: func(phase, key string) error {
		switch {
		case phase == "double-write" && !fedMidA:
			// Traffic lands the instant double-writing starts: moving keys
			// (including one the fleet has never seen) split across both
			// WALs, staying keys flow untouched.
			fedMidA = true
			h.feed(t, midA)
		case phase == "tail-landed" && !stalled:
			// Zero-stall proof, run while the cutover is mid-pause: a
			// staying key's traffic must keep scoring and its partition's
			// committed watermark must strictly advance before any moving
			// key is released.
			stalled = true
			h.mu.Lock()
			scoresBefore := len(h.scores[staying[0]])
			h.mu.Unlock()
			committedBefore := h.rt.Committed(stayPart)
			h.feed(t, stall)
			deadline := time.Now().Add(30 * time.Second)
			for {
				h.mu.Lock()
				scored := len(h.scores[staying[0]])
				h.mu.Unlock()
				if scored > scoresBefore && h.rt.Committed(stayPart) > committedBefore {
					break
				}
				if time.Now().After(deadline) {
					t.Errorf("staying key %s stalled mid-cutover: %d→%d windows, watermark %d→%d",
						staying[0], scoresBefore, scored, committedBefore, h.rt.Committed(stayPart))
					break
				}
				time.Sleep(time.Millisecond)
			}
		case phase == "released" && !fedMidB:
			// Traffic after the first key flips to destination-only routing.
			fedMidB = true
			h.feed(t, midB)
		}
		return nil
	}})
	if err != nil {
		t.Fatalf("LiveRebalance: %v", err)
	}
	if report.From != 2 || report.To != 3 {
		t.Fatalf("report %d→%d, want 2→3", report.From, report.To)
	}
	if report.MovedKeys == 0 {
		t.Fatal("live rebalance moved no keys")
	}
	if got := h.rt.Shards(); got != 3 {
		t.Fatalf("Shards() = %d after live rebalance, want 3", got)
	}
	if _, err := os.Stat(filepath.Join(dir, liveJournalName)); !os.IsNotExist(err) {
		t.Fatalf("cutover journal still present after a completed live rebalance (stat err %v)", err)
	}
	if stragglers, _ := filepath.Glob(filepath.Join(dir, "p2", spliceFilePrefix+"*")); len(stragglers) != 0 {
		t.Fatalf("splice files not swept after the cutover: %v", stragglers)
	}
	for _, k := range moving {
		if got := h.rt.PartitionFor(k); got != 2 {
			t.Fatalf("moved key %s routes to partition %d after growth, want 2", k, got)
		}
	}

	h.feed(t, post)
	h.drain(t)
	if err := h.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	requireEqual(t, "live 2→3 under traffic", h.result(), ref)

	// The grown layout is a first-class 3-shard deployment: a plain
	// reopen at 3 shards must come up clean with nothing to re-detect.
	h2 := openHarness(t, dir, 3, nil)
	h2.drain(t)
	if err := h2.rt.Close(); err != nil {
		t.Fatalf("reopen Close: %v", err)
	}
	if res := h2.result(); len(res.scores) != 0 || h2.rt.Stats().LinesCollected != 0 {
		t.Fatalf("reopen after live rebalance re-detected: %d keys, %d lines", len(res.scores), h2.rt.Stats().LinesCollected)
	}
}

// Double-written records must be duplicates in storage only, never in
// detection: rolling every partition's committed offset halfway back
// redelivers the double-write window on both its WALs, and the
// redelivery-prefix protocol must skip every record of it.
func TestLiveRebalanceDuplicateSkipOnRedelivery(t *testing.T) {
	keys := eqKeys(8)
	pre := genEqLines(11, 1200, keys)
	mid := genEqLines(12, 500, keys)

	dir := t.TempDir()
	h := openHarness(t, dir, 2, nil)
	h.feed(t, pre)
	fed := false
	if _, err := h.rt.liveRebalance(liveOpts{to: 3, hook: func(phase, key string) error {
		if phase == "double-write" && !fed {
			fed = true
			h.feed(t, mid)
		}
		return nil
	}}); err != nil {
		t.Fatalf("LiveRebalance: %v", err)
	}
	h.drain(t)
	if err := h.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	for i := 0; i < 3; i++ {
		path := filepath.Join(dir, fmt.Sprintf("p%d", i), "offsets.json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading offsets: %v", err)
		}
		var f struct {
			Version int               `json:"version"`
			Groups  map[string]uint64 `json:"groups"`
		}
		if err := json.Unmarshal(data, &f); err != nil {
			t.Fatalf("parsing offsets: %v", err)
		}
		if f.Groups["detector"] == 0 {
			t.Fatalf("partition %d never committed; the rollback is vacuous", i)
		}
		f.Groups["detector"] /= 2
		out, _ := json.Marshal(f)
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatalf("rewriting offsets: %v", err)
		}
	}

	h2 := openHarness(t, dir, 3, nil)
	h2.drain(t)
	if err := h2.rt.Close(); err != nil {
		t.Fatalf("Close after rollback: %v", err)
	}
	if res := h2.result(); len(res.scores) != 0 {
		t.Fatalf("redelivered double-write records were re-detected: %d keys scored", len(res.scores))
	}
	if got := h2.rt.Stats().LinesCollected; got != 0 {
		t.Fatalf("redelivered double-write records were re-collected: %d lines", got)
	}
}

// A crash at every per-key cutover phase must resume on exactly one
// layout per key: the journal is the per-key authority, the reopened
// runtime (at the target shard count) finishes the cutover inside Open,
// and the combined pre-crash + post-crash output stays bit-identical to
// the reference.
func TestLiveRebalanceCrashResume(t *testing.T) {
	phases := []string{"double-write", "tail-landed", "staged", "committed", "released"}
	for _, phase := range phases {
		phase := phase
		t.Run(phase, func(t *testing.T) {
			keys := eqKeys(10)
			pre := genEqLines(21, 1200, keys)
			mid := genEqLines(22, 300, keys)
			post := genEqLines(23, 1200, keys)
			var stream []string
			for _, seg := range [][]string{pre, mid, post} {
				stream = append(stream, seg...)
			}
			ref := runReference(t, stream)

			dir := t.TempDir()
			h := openHarness(t, dir, 2, nil)
			h.feed(t, pre)
			boom := errors.New("injected crash")
			fedMid := false
			_, err := h.rt.liveRebalance(liveOpts{to: 3, hook: func(ph, key string) error {
				if ph == "double-write" && !fedMid {
					// Mid-cutover traffic lands before the crash, so the
					// resume has double-written records on both sides.
					fedMid = true
					h.feed(t, mid)
				}
				if ph == phase {
					return boom
				}
				return nil
			}})
			if !errors.Is(err, boom) {
				t.Fatalf("LiveRebalance error = %v, want injected crash", err)
			}
			if _, err := os.Stat(filepath.Join(dir, liveJournalName)); err != nil {
				t.Fatalf("cutover journal missing after crash at %s: %v", phase, err)
			}
			// Quiesce to a committed boundary (parked-on-gate counts: the
			// gate commits before parking), then crash hard.
			h.drain(t)
			h.rt.Kill()

			// A reopen at the old shard count must refuse — the journal
			// pins the cutover's target.
			if _, err := Open(killedConfig(t, dir, 2)); err == nil || !strings.Contains(err.Error(), "live cutover") {
				t.Fatalf("Open at 2 shards mid-cutover: err = %v, want live-cutover refusal", err)
			}

			h2 := reopenHarness(t, dir, 3, h)
			if got := h2.rt.Shards(); got != 3 {
				t.Fatalf("Shards() = %d after resumed cutover, want 3", got)
			}
			if _, err := os.Stat(filepath.Join(dir, liveJournalName)); !os.IsNotExist(err) {
				t.Fatalf("cutover journal still present after resume (stat err %v)", err)
			}
			h2.feed(t, post)
			h2.drain(t)
			if err := h2.rt.Close(); err != nil {
				t.Fatalf("Close after resume: %v", err)
			}
			requireEqual(t, "crash at "+phase, h2.result(), ref)
		})
	}
}

// killedConfig builds a throwaway config over dir purely to probe Open's
// validation (its sink and captures go nowhere).
func killedConfig(t *testing.T, dir string, shards int) Config {
	t.Helper()
	det, interp, e := eqEnv()
	return Config{
		Shards:   shards,
		Dir:      dir,
		Detector: det,
		Interp:   interp,
		Embedder: e,
		Sink:     &pipeline.MemorySink{},
		Metrics:  obs.NewRegistry(),
	}
}

func TestLiveRebalanceValidation(t *testing.T) {
	h := openHarness(t, t.TempDir(), 2, nil)
	defer h.rt.Close()

	report, err := h.rt.LiveRebalance(2)
	if err != nil {
		t.Fatalf("LiveRebalance(2) on 2 shards: %v", err)
	}
	if !report.AlreadyBalanced {
		t.Fatal("LiveRebalance to the current count should report AlreadyBalanced")
	}
	if _, err := h.rt.LiveRebalance(4); err == nil || !strings.Contains(err.Error(), "one partition at a time") {
		t.Fatalf("LiveRebalance(4) on 2 shards: err = %v, want one-at-a-time refusal", err)
	}
	if _, err := h.rt.LiveRebalance(1); err == nil {
		t.Fatal("LiveRebalance(1) on 2 shards should refuse (live shrink is unsupported)")
	}
}

// The offline rebalancer must refuse a root mid live-cutover: the
// journal owns the layout transition until it completes.
func TestOfflineRebalanceRefusesLiveJournal(t *testing.T) {
	dir := t.TempDir()
	j := &liveJournal{Version: 1, From: 2, To: 3,
		Freeze: map[int]uint64{0: 1, 1: 1}, Keys: map[string]string{}}
	if err := saveJournal(dir, j); err != nil {
		t.Fatalf("saveJournal: %v", err)
	}
	if _, err := RebalanceGroup(dir, "", 2, 3, ""); err == nil || !strings.Contains(err.Error(), "live cutover") {
		t.Fatalf("offline rebalance over a live cutover: err = %v, want refusal", err)
	}
}
