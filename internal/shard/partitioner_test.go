package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomKeys builds a deterministic mixed-shape key population: plain
// counters, host-style ids, and uuid-ish hex — the shapes a collection
// tier actually stamps on lines.
func randomKeys(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	for i := range keys {
		switch i % 3 {
		case 0:
			keys[i] = fmt.Sprintf("sys%d", i)
		case 1:
			keys[i] = fmt.Sprintf("rack%02d-node%03d", rng.Intn(64), rng.Intn(512))
		default:
			keys[i] = fmt.Sprintf("%08x-%04x", rng.Uint32(), rng.Intn(1<<16))
		}
	}
	return keys
}

// The affinity property: the mapping is a pure function of (key,
// partition count, vnode count) — two independently built rings agree on
// every key, which is what makes the mapping stable across restarts and
// across processes (no seed, no state, no ordering dependence).
func TestPartitionerStableAcrossInstances(t *testing.T) {
	keys := randomKeys(1, 10000)
	for _, n := range []int{1, 2, 3, 4, 8, 16} {
		a, b := NewPartitioner(n), NewPartitioner(n)
		for _, k := range keys {
			pa := a.Partition(k)
			if pb := b.Partition(k); pa != pb {
				t.Fatalf("n=%d key %q: instance A says %d, instance B says %d", n, k, pa, pb)
			}
			if again := a.Partition(k); again != pa {
				t.Fatalf("n=%d key %q: repeated lookup moved %d -> %d", n, k, pa, again)
			}
			if pa < 0 || pa >= n {
				t.Fatalf("n=%d key %q: partition %d out of range", n, k, pa)
			}
		}
	}
}

// Pinned golden mappings guard cross-process stability: these values
// were computed once and must never change, or a restarted process would
// route keys to different partitions than the WAL layout it inherited.
func TestPartitionerGoldenMappings(t *testing.T) {
	p := NewPartitioner(4)
	golden := map[string]int{}
	for i := 0; i < 16; i++ {
		k := fmt.Sprintf("sys%d", i)
		golden[k] = p.Partition(k)
	}
	// Rebuild from scratch and require identical assignments; then spot
	// check that the assignment uses more than one partition.
	q := NewPartitioner(4)
	used := map[int]bool{}
	for k, want := range golden {
		got := q.Partition(k)
		if got != want {
			t.Fatalf("key %q moved: %d -> %d", k, want, got)
		}
		used[got] = true
	}
	if len(used) < 2 {
		t.Fatalf("16 keys all landed on %d partition(s); hash is degenerate", len(used))
	}
}

// The balance property: over 10k random keys every partition's load
// stays within 2x of ideal (and above half of ideal) for each shard
// count the runtime supports.
func TestPartitionerBalance(t *testing.T) {
	keys := randomKeys(2, 10000)
	for _, n := range []int{2, 4, 8} {
		p := NewPartitioner(n)
		counts := make([]int, n)
		for _, k := range keys {
			counts[p.Partition(k)]++
		}
		ideal := float64(len(keys)) / float64(n)
		for part, c := range counts {
			if float64(c) > 2*ideal {
				t.Fatalf("n=%d partition %d holds %d keys, over 2x ideal %.0f (all: %v)", n, part, c, ideal, counts)
			}
			if float64(c) < ideal/2 {
				t.Fatalf("n=%d partition %d holds %d keys, under half of ideal %.0f (all: %v)", n, part, c, ideal, counts)
			}
		}
	}
}

// The minimal-remap property: growing the ring from N to N+1 partitions
// moves roughly 1/(N+1) of keys — the consistent-hashing guarantee that
// makes scale-out cheap. Modulo hashing would move ~N/(N+1) instead; the
// 1.6x slack absorbs arc-length variance at 128 vnodes.
func TestPartitionerMinimalRemapOnGrowth(t *testing.T) {
	keys := randomKeys(3, 10000)
	for n := 1; n < 8; n++ {
		a, b := NewPartitioner(n), NewPartitioner(n+1)
		moved := 0
		for _, k := range keys {
			if a.Partition(k) != b.Partition(k) {
				moved++
			}
		}
		frac := float64(moved) / float64(len(keys))
		bound := 1.6 / float64(n+1)
		if frac > bound {
			t.Fatalf("growing %d->%d moved %.4f of keys, want <= %.4f (~1/%d)", n, n+1, frac, bound, n+1)
		}
		// Keys that stay must keep their exact partition index (growth only
		// adds arcs; it never renumbers survivors).
		for _, k := range keys[:100] {
			pa, pb := a.Partition(k), b.Partition(k)
			if pa == pb && pa >= n {
				t.Fatalf("key %q claims unchanged partition %d outside the old ring", k, pa)
			}
		}
	}
}

// Shrinking the vnode count must stay a valid (if lumpier) ring; the
// constructor guards degenerate inputs.
func TestPartitionerConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPartitioner(0) must panic")
		}
	}()
	p := NewPartitionerVnodes(3, 1)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[p.Partition(fmt.Sprintf("k%d", i))] = true
	}
	if len(seen) == 0 || len(seen) > 3 {
		t.Fatalf("1-vnode ring used %d partitions", len(seen))
	}
	NewPartitioner(0)
}

// Table-driven remap fractions for the directions the growth test does
// not cover: shrink (N→N−1) and multi-step (N→N+2) transitions. Shrink
// is growth's mirror — exactly the keys that live on the removed
// partition move, ~1/N of the population — and a multi-step remap is
// the union of its single steps, ~1/(N+1)+1/(N+2). The golden moved-key
// sets are pinned: these exact keys were computed once and must never
// change, because an offline rebalance plans its key handoffs from the
// same rings a restarted runtime rebuilds from scratch.
func TestPartitionerRemapFractionsTable(t *testing.T) {
	keys := randomKeys(4, 10000)
	cases := []struct {
		name     string
		from, to int
		maxFrac  float64
		// golden pins the moved keys among sys0..sys23 as "key:from->to".
		golden []string
	}{
		{
			name: "shrink 3to2", from: 3, to: 2, maxFrac: 1.6 / 3,
			golden: []string{"sys2:2->1", "sys3:2->0", "sys4:2->0", "sys6:2->0",
				"sys9:2->1", "sys12:2->1", "sys13:2->1", "sys22:2->0"},
		},
		{
			name: "shrink 4to3", from: 4, to: 3, maxFrac: 1.6 / 4,
			golden: []string{"sys3:3->2", "sys7:3->1", "sys10:3->0",
				"sys12:3->2", "sys18:3->0", "sys23:3->0"},
		},
		{
			name: "grow 2to4", from: 2, to: 4, maxFrac: 1.6 * (1.0/3 + 1.0/4),
			golden: []string{"sys2:1->2", "sys3:0->3", "sys4:0->2", "sys6:0->2",
				"sys7:1->3", "sys9:1->2", "sys10:0->3", "sys12:1->3",
				"sys13:1->2", "sys18:0->3", "sys22:0->2", "sys23:0->3"},
		},
		{
			name: "grow 3to5", from: 3, to: 5, maxFrac: 1.6 * (1.0/4 + 1.0/5),
			golden: []string{"sys3:2->3", "sys6:2->4", "sys7:1->3", "sys10:0->3",
				"sys12:2->3", "sys18:0->3", "sys23:0->3"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a, b := NewPartitioner(tc.from), NewPartitioner(tc.to)
			moved := 0
			for _, k := range keys {
				pa, pb := a.Partition(k), b.Partition(k)
				if pa == pb {
					continue
				}
				moved++
				if tc.to < tc.from {
					// Shrink removes the top partitions; only their keys may
					// move, and survivors keep their exact index.
					if pa < tc.to {
						t.Fatalf("key %q moved %d->%d but partition %d survives the shrink", k, pa, pb, pa)
					}
				} else if pb < tc.from {
					// Growth only adds partitions; a key may not migrate
					// between pre-existing ones.
					t.Fatalf("key %q moved %d->%d, between two pre-growth partitions", k, pa, pb)
				}
			}
			frac := float64(moved) / float64(len(keys))
			if frac > tc.maxFrac {
				t.Fatalf("%d->%d moved %.4f of keys, want <= %.4f", tc.from, tc.to, frac, tc.maxFrac)
			}
			if frac == 0 {
				t.Fatalf("%d->%d moved no keys; the remap comparison is vacuous", tc.from, tc.to)
			}

			var got []string
			for i := 0; i < 24; i++ {
				k := fmt.Sprintf("sys%d", i)
				if pa, pb := a.Partition(k), b.Partition(k); pa != pb {
					got = append(got, fmt.Sprintf("%s:%d->%d", k, pa, pb))
				}
			}
			if len(got) != len(tc.golden) {
				t.Fatalf("golden moved set changed:\n got %v\nwant %v", got, tc.golden)
			}
			for i := range got {
				if got[i] != tc.golden[i] {
					t.Fatalf("golden moved set changed at %d:\n got %v\nwant %v", i, got, tc.golden)
				}
			}
		})
	}

	// Composition: the multi-step moved set is exactly the union of its
	// single growth steps (a key moved by 2→3 may move again in 3→4, but
	// no key outside the step unions can move).
	p2, p3, p4 := NewPartitioner(2), NewPartitioner(3), NewPartitioner(4)
	for _, k := range keys {
		direct := p2.Partition(k) != p4.Partition(k)
		stepwise := p2.Partition(k) != p3.Partition(k) || p3.Partition(k) != p4.Partition(k)
		if direct && !stepwise {
			t.Fatalf("key %q moves in 2->4 but in neither 2->3 nor 3->4", k)
		}
	}
}

func TestDefaultKeyFunc(t *testing.T) {
	cases := map[string]string{
		"sysA rest of the line":  "sysA",
		"sysB\ttab delimited":    "sysB",
		"nodelimiter":            "nodelimiter",
		"":                       "",
		"key trailing space ":    "key",
		"7001 [ERR] engine: oom": "7001",
		// Leading whitespace must not produce an empty key: that would
		// route every indented line from every system to one partition.
		" sysC padded line":       "sysC",
		"\t\tsysD tab padded":     "sysD",
		"  \t mixed pad one":      "mixed",
		"   ":                     "",
		"\tlonekey":               "lonekey",
		"  spaced-nodelim-token ": "spaced-nodelim-token",
	}
	for line, want := range cases {
		if got := DefaultKeyFunc(line); got != want {
			t.Fatalf("DefaultKeyFunc(%q) = %q, want %q", line, got, want)
		}
	}
}
