package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"logsynergy/internal/core"
	"logsynergy/internal/drain"
	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
	"logsynergy/internal/repr"
	"logsynergy/internal/tensor"
)

// The headline proof: fixed-seed multi-system traffic pushed through 1,
// 2, 4 and 8 shards yields bit-identical per-key score sequences and
// identical alert multisets versus a single keyed pipeline over the same
// stream — including across a mid-run crash/restart.
//
// The harness corpora use canonical line bodies whose parameters are all
// maskable by the parser (integers, IPs, hex), and every body has a
// distinct token count. That pins each body to exactly one immutable
// Drain template regardless of arrival order, so the only thing that can
// differ across shard counts is the runtime's own behavior — which is
// precisely what the suite is testing.

const eqHint = "a sharded multi-stream deployment"

// eqBodies are the line shapes; token counts (including the key token)
// are pairwise distinct so no two bodies ever share a parser leaf.
var eqBodies = []string{
	"gc freed %B%",
	"cache hit key %H%",
	"replica sync offset %B% ok",
	"job %B% queued on partition %N%",
	"query ok rows %N% in %N% ms",
	"connection accepted from %IP% port %N% tls on",
	"request routed route api status %N% dur %N% ms",
	"cluster bus peer %IP% unreachable marking FAIL epoch %B% now",
	"rpc deadline exceeded method Charge dur %N% ms budget %N% ms",
	"disk flush wrote %B% bytes to segment %N% in %N% ms ok",
}

// eqKeys are pure-integer stream ids: the key token itself masks to <*>,
// so a body's template is identical no matter which keys emit it.
func eqKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = strconv.Itoa(7001 + i)
	}
	return keys
}

// genEqLines renders fixed-seed traffic: each line is "key body" with
// random (maskable) parameter values.
func genEqLines(seed int64, n int, keys []string) []string {
	rng := rand.New(rand.NewSource(seed))
	lines := make([]string, n)
	for i := range lines {
		body := eqBodies[rng.Intn(len(eqBodies))]
		var b strings.Builder
		for len(body) > 0 {
			j := strings.IndexByte(body, '%')
			if j < 0 {
				b.WriteString(body)
				break
			}
			k := strings.IndexByte(body[j+1:], '%')
			if k < 0 {
				b.WriteString(body)
				break
			}
			b.WriteString(body[:j])
			switch body[j+1 : j+1+k] {
			case "N":
				fmt.Fprintf(&b, "%d", rng.Intn(1000))
			case "B":
				fmt.Fprintf(&b, "%d", 10000+rng.Intn(99999999))
			case "H":
				fmt.Fprintf(&b, "0x%08x", rng.Uint32())
			case "IP":
				fmt.Fprintf(&b, "%d.%d.%d.%d", 10+rng.Intn(160), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254))
			}
			body = body[j+k+2:]
		}
		lines[i] = keys[rng.Intn(len(keys))] + " " + b.String()
	}
	return lines
}

// eqEnv builds a fresh deterministic detection environment: an untrained
// (seeded) model over an empty event table. Detection quality is
// irrelevant here — scores just have to be deterministic functions of
// the traffic, which they are: same templates → same interpretations →
// same embeddings → same model output.
func eqEnv() (*core.Detector, lei.Interpreter, *embed.Embedder) {
	cfg := core.DefaultConfig()
	m := core.NewModel(cfg, 2)
	table := &repr.EventTable{System: "SystemX", Dim: cfg.EmbedDim, Vectors: tensor.New(0, cfg.EmbedDim)}
	det := core.NewDetector(m, table)
	det.Now = func() time.Time { return time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC) }
	return det, lei.NewSimLLM(lei.Config{}), embed.New(cfg.EmbedDim)
}

// eqResult is one run's observable output: per-key score sequences and
// the alert multiset.
type eqResult struct {
	scores map[string][]float64
	alerts map[string]int
}

// alertSigs reduces reports to an id-free multiset signature (event-id
// numbering is per-process; scores and templates are not).
func alertSigs(reports []*core.Report) map[string]int {
	sigs := make(map[string]int, len(reports))
	for _, r := range reports {
		sig := r.System + "|" + strconv.FormatFloat(r.Score, 'x', -1, 64) + "|" + strings.Join(r.Templates, "\x1f")
		sigs[sig]++
	}
	return sigs
}

// runReference drives the single keyed pipeline over the whole stream.
func runReference(t *testing.T, lines []string) eqResult {
	t.Helper()
	det, interp, e := eqEnv()
	sink := &pipeline.MemorySink{}
	cfg := pipeline.DefaultConfig(eqHint)
	cfg.Metrics = obs.NewRegistry()
	p := pipeline.New(cfg, drain.NewDefault(), det, interp, e, sink)
	k := pipeline.NewKeyed(p)
	scores := map[string][]float64{}
	k.OnWindow = func(key string, seq []int, score float64, abandoned bool) {
		if abandoned {
			t.Errorf("reference abandoned a window for key %q", key)
		}
		scores[key] = append(scores[key], score)
	}
	for _, line := range lines {
		k.Feed(DefaultKeyFunc(line), line)
	}
	k.Flush()
	return eqResult{scores: scores, alerts: alertSigs(sink.Reports())}
}

// shardHarness holds one sharded runtime plus its capture state.
type shardHarness struct {
	rt     *Runtime
	sink   *pipeline.MemorySink
	mu     sync.Mutex
	scores map[string][]float64
}

// openHarness assembles a runtime over dir. Reopening with the same dir
// resumes from the persisted per-partition state.
func openHarness(t *testing.T, dir string, shards int, mutate func(*Config)) *shardHarness {
	t.Helper()
	h := &shardHarness{sink: &pipeline.MemorySink{}, scores: map[string][]float64{}}
	det, interp, e := eqEnv()
	pcfg := pipeline.DefaultConfig(eqHint)
	cfg := Config{
		Shards:   shards,
		Dir:      dir,
		Pipeline: pcfg,
		Detector: det,
		Interp:   interp,
		Embedder: e,
		Sink:     h.sink,
		Metrics:  obs.NewRegistry(),
		OnWindow: func(shard int, key string, seq []int, score float64, abandoned bool) {
			if abandoned {
				t.Errorf("shard %d abandoned a window for key %q", shard, key)
			}
			h.mu.Lock()
			h.scores[key] = append(h.scores[key], score)
			h.mu.Unlock()
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open(%d shards): %v", shards, err)
	}
	h.rt = rt
	return h
}

// feed appends the lines in order, in modest batches (exercising the
// batch router), failing the test on any rejection.
func (h *shardHarness) feed(t *testing.T, lines []string) {
	t.Helper()
	const batch = 64
	for i := 0; i < len(lines); i += batch {
		end := i + batch
		if end > len(lines) {
			end = len(lines)
		}
		if _, err := h.rt.AppendBatch(lines[i:end]); err != nil {
			t.Fatalf("AppendBatch: %v", err)
		}
	}
}

// drain waits for every partition to finish and commit.
func (h *shardHarness) drain(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := h.rt.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func (h *shardHarness) result() eqResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	scores := make(map[string][]float64, len(h.scores))
	for k, v := range h.scores {
		scores[k] = append([]float64(nil), v...)
	}
	return eqResult{scores: scores, alerts: alertSigs(h.sink.Reports())}
}

// requireEqual compares a run's output against the reference, key by
// key, score bit by score bit.
func requireEqual(t *testing.T, label string, got, want eqResult) {
	t.Helper()
	if len(got.scores) != len(want.scores) {
		t.Fatalf("%s: %d keys scored, reference has %d", label, len(got.scores), len(want.scores))
	}
	for key, wantSeq := range want.scores {
		gotSeq := got.scores[key]
		if len(gotSeq) != len(wantSeq) {
			t.Fatalf("%s key %s: %d windows vs reference %d", label, key, len(gotSeq), len(wantSeq))
		}
		for i := range wantSeq {
			if gotSeq[i] != wantSeq[i] {
				t.Fatalf("%s key %s window %d: score %v != reference %v (diff %g)",
					label, key, i, gotSeq[i], wantSeq[i], gotSeq[i]-wantSeq[i])
			}
		}
	}
	if len(got.alerts) != len(want.alerts) {
		t.Fatalf("%s: %d distinct alert signatures vs reference %d", label, len(got.alerts), len(want.alerts))
	}
	for sig, n := range want.alerts {
		if got.alerts[sig] != n {
			t.Fatalf("%s: alert %q seen %d times, reference %d", label, sig[:min(len(sig), 80)], got.alerts[sig], n)
		}
	}
}

func TestShardEquivalenceAcrossShardCounts(t *testing.T) {
	keys := eqKeys(12)
	lines := genEqLines(42, 3000, keys)
	ref := runReference(t, lines)
	if len(ref.alerts) == 0 {
		t.Fatal("reference produced no alerts; the equivalence comparison is vacuous")
	}
	total := 0
	for _, seq := range ref.scores {
		total += len(seq)
	}
	if total == 0 {
		t.Fatal("reference scored no windows")
	}

	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			h := openHarness(t, t.TempDir(), shards, nil)
			h.feed(t, lines)
			h.drain(t)
			if err := h.rt.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			requireEqual(t, fmt.Sprintf("shards=%d", shards), h.result(), ref)

			// The shared caches really were shared: every distinct template
			// was rendered by the inner interpreter exactly once.
			_, misses, _ := h.rt.Cache().Stats()
			if misses != int64(len(eqBodies)) {
				t.Fatalf("interpreter rendered %d templates, want %d (one per body)", misses, len(eqBodies))
			}
		})
	}
}

// A runtime crash mid-stream must not change a single bit of output:
// the restarted runtime resumes every partition from its committed
// offset and persisted window tails.
func TestShardCrashRestartResumesExactly(t *testing.T) {
	keys := eqKeys(9)
	lines := genEqLines(137, 2400, keys)
	ref := runReference(t, lines)

	dir := t.TempDir()
	h := openHarness(t, dir, 4, nil)
	h.feed(t, lines[:1100]) // cut mid-window for most keys
	h.drain(t)
	h.rt.Kill() // crash: no graceful close, no extra commits

	// The restarted runtime funnels captures into the same maps, so the
	// combined pre- and post-crash output is compared to the reference.
	h2 := reopenHarness(t, dir, 4, h)
	h2.feed(t, lines[1100:])
	h2.drain(t)
	if err := h2.rt.Close(); err != nil {
		t.Fatalf("Close after restart: %v", err)
	}
	requireEqual(t, "crash/restart", h2.result(), ref)
}

// reopenHarness opens a runtime over an existing directory, funneling
// captures into the prior harness's maps so pre- and post-crash output
// accumulate together.
func reopenHarness(t *testing.T, dir string, shards int, prev *shardHarness) *shardHarness {
	t.Helper()
	h := &shardHarness{sink: prev.sink, scores: prev.scores}
	det, interp, e := eqEnv()
	cfg := Config{
		Shards:   shards,
		Dir:      dir,
		Pipeline: pipeline.DefaultConfig(eqHint),
		Detector: det,
		Interp:   interp,
		Embedder: e,
		Sink:     h.sink,
		Metrics:  obs.NewRegistry(),
		OnWindow: func(shard int, key string, seq []int, score float64, abandoned bool) {
			if abandoned {
				t.Errorf("shard %d abandoned a window for key %q", shard, key)
			}
			h.mu.Lock()
			h.scores[key] = append(h.scores[key], score)
			h.mu.Unlock()
		},
	}
	rt, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	h.rt = rt
	return h
}

// Records redelivered because the broker offset trails the persisted
// shard state are skipped, not re-detected: rolling the committed offset
// back by hand and restarting must produce zero new windows.
func TestShardRestartSkipsRedelivered(t *testing.T) {
	keys := eqKeys(6)
	lines := genEqLines(7, 900, keys)

	dir := t.TempDir()
	h := openHarness(t, dir, 2, nil)
	h.feed(t, lines)
	h.drain(t)
	if err := h.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Roll every partition's committed offset halfway back — simulating a
	// crash that lost the offset write but kept the (later) state write.
	for i := 0; i < 2; i++ {
		path := filepath.Join(dir, fmt.Sprintf("p%d", i), "offsets.json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading offsets: %v", err)
		}
		var f struct {
			Version int               `json:"version"`
			Groups  map[string]uint64 `json:"groups"`
		}
		if err := json.Unmarshal(data, &f); err != nil {
			t.Fatalf("parsing offsets: %v", err)
		}
		if f.Groups["detector"] == 0 {
			t.Fatalf("partition %d never committed", i)
		}
		f.Groups["detector"] /= 2
		out, _ := json.Marshal(f)
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatalf("rewriting offsets: %v", err)
		}
	}

	h2 := openHarness(t, dir, 2, nil)
	h2.drain(t)
	if err := h2.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	res := h2.result()
	if len(res.scores) != 0 {
		t.Fatalf("redelivered records were re-detected: %d keys scored windows", len(res.scores))
	}
	if got := h2.rt.Stats().LinesCollected; got != 0 {
		t.Fatalf("redelivered records were re-collected: %d lines", got)
	}
}

// Satellite: graceful shutdown commits EVERY partition's offset — not
// just the last one to drain — so a restart re-detects nothing.
func TestShardCloseCommitsEveryPartition(t *testing.T) {
	keys := eqKeys(16)
	lines := genEqLines(99, 1200, keys)

	dir := t.TempDir()
	h := openHarness(t, dir, 4, nil)
	h.feed(t, lines)
	// No explicit Drain: Close itself must drain workers and commit every
	// partition (the SIGINT path).
	if err := h.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	routed := 0
	for i, pt := range h.rt.parts {
		next := pt.bk.NextOffset()
		if next == 1 {
			t.Fatalf("partition %d received no traffic; key spread too narrow for the test", i)
		}
		if got := pt.bk.Committed("detector"); got != next-1 {
			t.Fatalf("partition %d committed %d of %d after Close", i, got, next-1)
		}
		if lag := pt.bk.Lag("detector"); lag != 0 {
			t.Fatalf("partition %d lag %d after Close", i, lag)
		}
		routed += int(next - 1)
	}
	if routed != len(lines) {
		t.Fatalf("partitions hold %d records, fed %d", routed, len(lines))
	}

	// Zero re-detection on restart.
	h2 := openHarness(t, dir, 4, nil)
	h2.drain(t)
	if err := h2.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res := h2.result(); len(res.scores) != 0 || h2.rt.Stats().LinesCollected != 0 {
		t.Fatalf("restart after graceful Close re-detected: %+v, %d lines", res.scores, h2.rt.Stats().LinesCollected)
	}
}

// Key affinity at the runtime level: every line of a key lands in the
// partition the partitioner names, and the runtime's merged snapshot
// accounts for every routed line across per-shard registries.
func TestShardRoutingAffinityAndSnapshot(t *testing.T) {
	keys := eqKeys(10)
	lines := genEqLines(3, 800, keys)
	h := openHarness(t, t.TempDir(), 4, nil)
	for _, line := range lines {
		part, _, err := h.rt.Append(line)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if want := h.rt.PartitionFor(DefaultKeyFunc(line)); part != want {
			t.Fatalf("line routed to partition %d, partitioner says %d", part, want)
		}
	}
	h.drain(t)
	snap := h.rt.Snapshot()
	if err := h.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := snap.Counters["shard.routed_lines_total"]; got != int64(len(lines)) {
		t.Fatalf("routed_lines_total %d, want %d", got, len(lines))
	}
	if got := snap.Counters["pipeline.lines_collected"]; got != int64(len(lines)) {
		t.Fatalf("merged lines_collected %d, want %d", got, len(lines))
	}
	var perShard int64
	for i := 0; i < 4; i++ {
		perShard += snap.Counters[fmt.Sprintf("shard%d.pipeline.lines_collected", i)]
	}
	if perShard != int64(len(lines)) {
		t.Fatalf("per-shard lines_collected sum %d, want %d", perShard, len(lines))
	}
	if snap.Gauges["shard.partitions"] != 4 {
		t.Fatalf("partitions gauge %d, want 4", snap.Gauges["shard.partitions"])
	}
}
