package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"logsynergy/internal/pipeline"
)

// Each partition persists a small resume file beside its WAL segments:
// the broker offset its window state reflects, plus every key's window
// tail (raw lines + slide counter). Together with the broker's committed
// consumer offset this makes restart resumption exact, not merely
// at-least-once: the tails rebuild each key's window phase, and the
// Consumed watermark tells the worker which redelivered records are
// already reflected in those tails and must be skipped.
//
// Write ordering is tails-then-offset: saveState runs before the broker
// offset commit, so a crash between the two leaves the offset behind the
// tails — the worker then skips the redelivered prefix up to Consumed.
// The reverse order would double-feed lines into restored windows.

// stateFileName is the resume file inside a partition's WAL directory.
const stateFileName = "shard-state.json"

// partitionState is the serialized resume state.
type partitionState struct {
	Version int `json:"version"`
	// Consumed is the highest broker offset reflected in Tails (0 = none).
	Consumed uint64 `json:"consumed"`
	// Tails maps stream key → window tail at the Consumed watermark.
	Tails map[string]pipeline.WindowTail `json:"tails,omitempty"`
}

// statePath renders the resume-file path for a partition directory.
func statePath(dir string) string { return filepath.Join(dir, stateFileName) }

// loadState reads a partition's resume state; a missing file is a fresh
// partition. Corruption is refused loudly — silently starting from zero
// would double-feed every restored tail.
func loadState(path string) (partitionState, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return partitionState{Version: 1}, nil
	}
	if err != nil {
		return partitionState{}, fmt.Errorf("shard: reading state: %w", err)
	}
	var st partitionState
	if err := json.Unmarshal(data, &st); err != nil {
		return partitionState{}, fmt.Errorf("shard: corrupt state file %s: %w", path, err)
	}
	if st.Version > 1 {
		return partitionState{}, fmt.Errorf("shard: state file version %d is newer than supported (1)", st.Version)
	}
	st.Version = 1
	return st, nil
}

// saveState persists the resume state atomically (temp file + rename).
func saveState(path string, st partitionState) error {
	st.Version = 1
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("shard: encoding state: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("shard: writing state: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("shard: installing state: %w", err)
	}
	return nil
}
