package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"logsynergy/internal/drain"
	"logsynergy/internal/pipeline"
)

// Each partition persists a small resume file beside its WAL segments:
// the broker offset its window state reflects, plus every key's window
// tail (raw lines + slide counter). Together with the broker's committed
// consumer offset this makes restart resumption exact, not merely
// at-least-once: the tails rebuild each key's window phase, and the
// Consumed watermark tells the worker which redelivered records are
// already reflected in those tails and must be skipped.
//
// Write ordering is tails-then-offset: saveState runs before the broker
// offset commit, so a crash between the two leaves the offset behind the
// tails — the worker then skips the redelivered prefix up to Consumed.
// The reverse order would double-feed lines into restored windows.
//
// Version 2 adds what a key handoff between partitions needs: the
// partition-count stamp (so a runtime opened at the wrong shard count
// refuses instead of silently misrouting keys), the parser's template
// groups, and the pattern library's cached verdicts. Version-1 files
// (and version-0, the pre-versioning layout) still load: they simply
// carry no events or patterns and no layout stamp to verify.
//
// Version 3 adds the live-cutover record: which moving keys a
// destination partition has already had spliced in. Persisted atomically
// with Consumed and Tails, it lets a crash mid-cutover resolve each key
// to exactly one side — a key whose splice landed in the destination's
// durable state is never re-spliced (which would regress its window
// phase past records the destination already consumed), while a key
// without the marker is re-applied from its staged splice file. The
// record only means anything while the root's live-cutover journal
// exists; without the journal it is stale debris and ignored on open.

// stateFileName is the resume file inside a partition's WAL directory.
const stateFileName = "shard-state.json"

// stateVersion is the current resume-file format.
const stateVersion = 3

// partitionState is the serialized resume state.
type partitionState struct {
	Version int `json:"version"`
	// Partitions is the shard count the partition was laid out for
	// (0 = unstamped legacy file, accepted against any layout).
	Partitions int `json:"partitions,omitempty"`
	// Consumed is the highest broker offset reflected in Tails (0 = none).
	Consumed uint64 `json:"consumed"`
	// Tails maps stream key → window tail at the Consumed watermark.
	Tails map[string]pipeline.WindowTail `json:"tails,omitempty"`
	// Events are the drain parser's template groups in id order — the id
	// space the Patterns sequences refer to.
	Events []drain.SavedEvent `json:"events,omitempty"`
	// Patterns are the pattern library's cached verdicts, least recently
	// used first.
	Patterns []pipeline.PatternEntry `json:"patterns,omitempty"`
	// Cutover is the live-cutover record (nil outside a cutover).
	Cutover *cutoverState `json:"cutover,omitempty"`
}

// cutoverState is the per-partition half of a live cutover's durable
// state (the other half is the root journal).
type cutoverState struct {
	// Spliced lists the moving keys whose donor tails and event spaces
	// this destination partition has already merged, sorted. The set is
	// written in the same atomic save as Consumed/Tails, so "spliced" and
	// "this state reflects the splice" can never disagree.
	Spliced []string `json:"spliced,omitempty"`
}

// statePath renders the resume-file path for a partition directory.
func statePath(dir string) string { return filepath.Join(dir, stateFileName) }

// loadState reads a partition's resume state; a missing file is a fresh
// partition. Corruption is refused loudly — silently starting from zero
// would double-feed every restored tail. Stale temp files from an
// interrupted saveState are swept here: they are by construction
// incomplete and the real file (if any) is the durable truth.
func loadState(path string) (partitionState, error) {
	sweepStaleTemp(path)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return partitionState{Version: stateVersion}, nil
	}
	if err != nil {
		return partitionState{}, fmt.Errorf("shard: reading state: %w", err)
	}
	if len(data) == 0 {
		return partitionState{}, fmt.Errorf("shard: corrupt state file %s: zero length", path)
	}
	var st partitionState
	if err := json.Unmarshal(data, &st); err != nil {
		return partitionState{}, fmt.Errorf("shard: corrupt state file %s: %w", path, err)
	}
	if st.Version > stateVersion {
		return partitionState{}, fmt.Errorf("shard: state file version %d is newer than supported (%d)", st.Version, stateVersion)
	}
	st.Version = stateVersion
	return st, nil
}

// sweepStaleTemp removes saveState temp files left behind by a crash
// between write and rename. Temp names are randomized (os.CreateTemp),
// so the sweep matches the prefix rather than one fixed name.
func sweepStaleTemp(path string) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if name != base && strings.HasPrefix(name, base+".tmp") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// saveState persists the resume state atomically and durably: a
// randomized temp file in the same directory, fsynced before the rename,
// and the directory fsynced after it so the rename itself survives a
// power cut. A failed install leaves the previous good file untouched.
func saveState(path string, st partitionState) error {
	st.Version = stateVersion
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("shard: encoding state: %w", err)
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("shard: creating state temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		cleanup()
		return fmt.Errorf("shard: writing state: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("shard: syncing state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("shard: closing state temp file: %w", err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("shard: setting state file mode: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("shard: installing state: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("shard: opening state dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("shard: syncing state dir: %w", err)
	}
	return nil
}
