package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"logsynergy/internal/drain"
	"logsynergy/internal/pipeline"
)

// Live rebalancing grows an OPEN runtime from N to N+1 partitions while
// traffic keeps flowing — the online counterpart of the offline
// stage→manifest→install protocol, decomposed per key:
//
//  1. Flip. Under the route write lock: the destination partition opens
//     on the new layout, every donor's next append offset is captured as
//     its freeze point, and the cutover journal (freeze points + ring
//     parameters) lands durably at the root. From this instant every
//     moving key's intake is double-written — appended to both the
//     donor's WAL (which stops feeding it at the freeze point) and the
//     destination's WAL (whose consumer parks before any unreleased
//     moving key's record). Non-moving keys are untouched: same
//     partition, same detection, same acks.
//  2. Tail landing. Each donor drains its pre-freeze backlog, so every
//     moving key's in-flight window tail is final.
//  3. Per key — stage: the key's WindowTail plus the donor's full event
//     space are written to a splice file in the destination's directory
//     (atomic, fsynced). Commit: the journal records the key as
//     "committed" — the per-key manifest; from here the key is
//     destination-owned and a crash rolls it forward. Install: the
//     splice merges into the live destination (donor event ids
//     translated by template, pattern verdicts deduped, tail restored)
//     and the donor forgets the key. Release: the journal records
//     "released" and the destination's parked consumer wakes for the
//     key; the router now sends it to the destination only.
//  4. Finish. Under the route write lock: every partition restamps and
//     persists on the new layout, the journal is removed (the end commit
//     point — no append can land in between, the lock excludes them),
//     and the router swaps rings.
//
// Crash safety inverts the offline protocol's all-or-nothing manifest
// into a per-key ledger: reopening a root whose journal exists (the
// runtime must come back with Shards = To) rebuilds the cutover,
// re-applies any committed-but-unspliced key from its staged file
// (destinations that already persisted the splice carry a Spliced marker
// in shard-state v3 and are left alone), discards nothing a pending key
// needs — its tail is still the donor's, records past the freeze point
// live in the destination's WAL — and then drives the cutover to
// completion before Open returns. Every key is on exactly one side at
// every instant: donor until its journal entry says "committed",
// destination after.
//
// Double-written records are exactly the donor-WAL records at offsets ≥
// the freeze point for moving keys: the donor consumes and acks them but
// never feeds them (the destination's copy is the one that counts), and
// after the cutover the ownership check — a record whose key no longer
// routes to the partition under its stamped layout is skipped — keeps
// redelivered copies out of detection forever.

// liveJournalName is the cutover journal at the runtime root. Its
// existence IS the cutover: the flip writes it before any double-write,
// the finish removes it after every partition is persisted on the new
// layout, and an Open that finds it resumes the cutover (at the new
// shard count) before serving.
const liveJournalName = "live-cutover.json"

// spliceFilePrefix names staged per-key splice files inside the
// destination partition's directory.
const spliceFilePrefix = "cutover-splice-"

// Per-key cutover phases, in order. A key absent from the journal is
// pending (donor-owned).
const (
	phasePending = iota
	// phaseCommitted: the journal entry exists — the key is
	// destination-owned; recovery rolls it forward from its splice file.
	phaseCommitted
	// phaseReleased: the destination consumer feeds the key and the
	// router no longer double-writes it.
	phaseReleased
)

// journalPhaseNames maps journal strings to phases.
var journalPhaseNames = map[string]int{"committed": phaseCommitted, "released": phaseReleased}

// liveJournal is the durable cutover ledger at the runtime root.
type liveJournal struct {
	Version int `json:"version"`
	From    int `json:"from"`
	To      int `json:"to"`
	// Vnodes is the ring's virtual-node override the cutover was computed
	// with (0 = default); a resume under a different ring would move a
	// different key set.
	Vnodes int `json:"vnodes"`
	// Freeze maps donor partition index → that donor's first
	// double-written offset. Donor records below it are donor-fed;
	// records at or above it belong to the destination's WAL copy.
	Freeze map[int]uint64 `json:"freeze"`
	// Keys is the per-key ledger: moved key → "committed" | "released".
	// Pending keys are absent.
	Keys map[string]string `json:"keys"`
}

// KeySplice is one staged per-key handoff: the moving key's window tail
// plus the donor's full event space at capture time (the key's parse
// history is scattered through it, and translation dedups by template).
// It is the payload of the networked cutover's transfer endpoint: a
// donor node captures it, the coordinator ships it, and the
// destination node stages it as a splice file.
type KeySplice struct {
	Version  int                     `json:"version"`
	Key      string                  `json:"key"`
	Tail     pipeline.WindowTail     `json:"tail"`
	Events   []drain.SavedEvent      `json:"events,omitempty"`
	Patterns []pipeline.PatternEntry `json:"patterns,omitempty"`
}

// journalPath renders the cutover journal path.
func journalPath(root string) string { return filepath.Join(root, liveJournalName) }

// loadJournal reads the cutover journal; absent means no cutover.
func loadJournal(root string) (*liveJournal, error) {
	data, err := os.ReadFile(journalPath(root))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("shard: reading cutover journal: %w", err)
	}
	var j liveJournal
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("shard: corrupt cutover journal %s: %w", journalPath(root), err)
	}
	if j.Freeze == nil {
		j.Freeze = make(map[int]uint64)
	}
	if j.Keys == nil {
		j.Keys = make(map[string]string)
	}
	return &j, nil
}

// saveJournal durably rewrites the journal (atomic + fsynced).
func saveJournal(root string, j *liveJournal) error {
	return writeJSONFile(journalPath(root), j)
}

// splicePath renders a key's staged splice file inside the destination
// partition's directory (the key itself may not be filename-safe).
func splicePath(dir, key string) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x.json", spliceFilePrefix, hashKey(key)))
}

// loadSplice reads a staged splice file.
func loadSplice(path string) (KeySplice, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return KeySplice{}, fmt.Errorf("shard: reading splice file %s: %w", path, err)
	}
	var sp KeySplice
	if err := json.Unmarshal(data, &sp); err != nil {
		return KeySplice{}, fmt.Errorf("shard: corrupt splice file %s: %w", path, err)
	}
	return sp, nil
}

// sweepSplices removes staged splice files — run at cutover end and by
// journal-less opens (a finish interrupted between journal removal and
// cleanup leaves stragglers that mean nothing without the journal).
func sweepSplices(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if len(name) > len(spliceFilePrefix) && name[:len(spliceFilePrefix)] == spliceFilePrefix {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// cutover is the in-memory state of a live rebalance, published to the
// router and every worker through Runtime.cut. Rings and freeze offsets
// are immutable after publication; the per-key phase map, finished and
// closed are guarded by mu, with cond waking the destination's parked
// consumer on every transition.
type cutover struct {
	from, to int
	oldRing  *Partitioner
	newRing  *Partitioner
	freeze   []uint64 // per-donor first double-written offset

	mu       sync.Mutex
	cond     *sync.Cond
	phase    map[string]int
	finished bool // set at finish; stale holders treat every key as released
	closed   bool // set by Kill/Close so a parked consumer can exit
}

// newCutover builds the in-memory cutover state.
func newCutover(from, to int, oldRing, newRing *Partitioner) *cutover {
	c := &cutover{
		from:    from,
		to:      to,
		oldRing: oldRing,
		newRing: newRing,
		freeze:  make([]uint64, from),
		phase:   make(map[string]int),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// moving reports whether the cutover moves key between partitions.
func (c *cutover) moving(key string) bool {
	return c.oldRing.Partition(key) != c.newRing.Partition(key)
}

// keyPhase returns the key's current phase (a finished cutover reads as
// all-released for workers still holding the pointer).
func (c *cutover) keyPhase(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		return phaseReleased
	}
	return c.phase[key]
}

// setPhase advances a key's phase and wakes the parked consumer.
func (c *cutover) setPhase(key string, phase int) {
	c.mu.Lock()
	c.phase[key] = phase
	c.cond.Broadcast()
	c.mu.Unlock()
}

// interrupt marks the cutover closed (crash or shutdown) and wakes any
// parked consumer so it can exit.
func (c *cutover) interrupt() {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// liveOpts is the full live-rebalance parameter set; tests reach the
// crash hook through it.
type liveOpts struct {
	to int
	// hook, when set, is invoked at named cutover points: "double-write"
	// once after the flip (key empty), then "tail-landed", "staged",
	// "committed" and "released" per key. Returning an error aborts
	// exactly there, leaving the journal in place — the crash-injection
	// suite then kills the runtime and proves Open resumes it.
	hook func(phase, key string) error
}

// callHook invokes the optional crash hook.
func (o liveOpts) callHook(phase, key string) error {
	if o.hook == nil {
		return nil
	}
	return o.hook(phase, key)
}

// LiveRebalance grows this open runtime from its current partition count
// N to to=N+1 under traffic: intake stays open throughout (moving keys
// double-write during their window), non-moving keys never stop
// detecting or acking, and each moving key cuts over individually as its
// donor window tail lands. On success the runtime serves the new layout;
// on error the cutover journal stays in place and a process restart
// (Open at the new shard count) resumes and finishes it. Grows one
// partition per call — run it repeatedly for larger growth.
func (rt *Runtime) LiveRebalance(to int) (*RebalanceReport, error) {
	return rt.liveRebalance(liveOpts{to: to})
}

// liveRebalance implements LiveRebalance with injectable crash points.
func (rt *Runtime) liveRebalance(o liveOpts) (*RebalanceReport, error) {
	start := time.Now()
	rt.liveMu.Lock()
	defer rt.liveMu.Unlock()
	if rt.cut.Load() != nil {
		return nil, errors.New("shard: a live cutover is already in progress")
	}
	if rt.cfg.Subset != nil {
		return nil, errors.New("shard: live rebalance requires a runtime serving every partition; " +
			"this one opened a subset (cluster node mode)")
	}
	rt.routeMu.RLock()
	from := rt.cfg.Shards
	oldRing := rt.part
	rt.routeMu.RUnlock()
	if o.to == from {
		return &RebalanceReport{From: from, To: o.to, Dir: rt.cfg.Dir, AlreadyBalanced: true, Duration: time.Since(start)}, nil
	}
	if o.to != from+1 {
		return nil, fmt.Errorf("shard: live rebalance grows one partition at a time (%d -> %d); got -to %d", from, from+1, o.to)
	}

	// The destination opens on the new layout before any routing changes.
	// Its directory may be an empty shell from an earlier failed attempt;
	// records only ever land in it after the journal exists, so an
	// orphaned empty directory is benign.
	newRing := NewPartitionerVnodes(o.to, rt.cfg.Vnodes)
	dest, err := rt.openPartitionAt(from, openOpts{layout: o.to, ring: newRing})
	if err != nil {
		return nil, fmt.Errorf("shard: opening cutover destination partition %d: %w", from, err)
	}
	cut := newCutover(from, o.to, oldRing, newRing)

	// The flip: freeze capture, journal write and cutover publication are
	// one atomic step as far as producers can tell — the route write lock
	// excludes appends, so no record lands between a donor's captured
	// freeze offset and the start of double-writing.
	rt.routeMu.Lock()
	j := &liveJournal{Version: 1, From: from, To: o.to, Vnodes: rt.cfg.Vnodes,
		Freeze: make(map[int]uint64, from), Keys: make(map[string]string)}
	for i := 0; i < from; i++ {
		cut.freeze[i] = rt.parts[i].bk.NextOffset()
		j.Freeze[i] = cut.freeze[i]
	}
	if err := saveJournal(rt.cfg.Dir, j); err != nil {
		rt.routeMu.Unlock()
		dest.cons.Close()
		dest.bk.Close()
		return nil, err
	}
	rt.parts = append(rt.parts, dest)
	rt.byIdx = append(rt.byIdx, dest)
	rt.cut.Store(cut)
	rt.routeMu.Unlock()
	go dest.run()
	rt.reg.Gauge("shard.cutover_active").Set(1)

	if err := o.callHook("double-write", ""); err != nil {
		return nil, err
	}
	moved, lines, err := rt.driveCutover(cut, j, o)
	if err != nil {
		return nil, err
	}
	if err := rt.finishCutover(cut); err != nil {
		return nil, err
	}
	return &RebalanceReport{
		From:       from,
		To:         o.to,
		Dir:        rt.cfg.Dir,
		MovedKeys:  moved,
		MovedLines: lines,
		Duration:   time.Since(start),
	}, nil
}

// driveCutover runs the per-key protocol to completion against a
// published cutover: donors drain to their freeze points, keys the
// journal already committed (a resumed cutover) roll forward, then every
// pending moving key stages, commits, splices and releases. Records past
// the freeze point never re-enter donor tails, so the pending set can
// only shrink; the loop's empty round proves convergence.
func (rt *Runtime) driveCutover(cut *cutover, j *liveJournal, o liveOpts) (movedKeys, movedLines int, err error) {
	for i := 0; i < cut.from; i++ {
		if err := rt.awaitTailLanded(rt.parts[i], cut.freeze[i]); err != nil {
			return 0, 0, err
		}
	}

	// Roll committed keys forward first: they are destination-owned, and
	// pending keys' enumeration below must not see their donor tails.
	committed := make([]string, 0)
	cut.mu.Lock()
	for k, ph := range cut.phase {
		if ph == phaseCommitted {
			committed = append(committed, k)
		}
	}
	cut.mu.Unlock()
	sort.Strings(committed)
	for _, k := range committed {
		if err := rt.ensureSpliced(cut, k); err != nil {
			return movedKeys, movedLines, err
		}
		if err := rt.releaseKey(cut, j, k); err != nil {
			return movedKeys, movedLines, err
		}
		if err := o.callHook("released", k); err != nil {
			return movedKeys, movedLines, err
		}
		movedKeys++
	}

	for {
		pending := rt.pendingMoving(cut)
		if len(pending) == 0 {
			break
		}
		for _, k := range pending {
			lines, err := rt.moveKey(cut, j, o, k)
			if err != nil {
				return movedKeys, movedLines, err
			}
			movedKeys++
			movedLines += lines
		}
	}
	return movedKeys, movedLines, nil
}

// awaitTailLanded blocks until the donor has consumed its full pre-freeze
// backlog — every moving key's window tail is then final, because records
// at or past the freeze point are never donor-fed.
func (rt *Runtime) awaitTailLanded(pt *partition, freeze uint64) error {
	for {
		pt.feedMu.Lock()
		consumed := pt.consumed
		pt.feedMu.Unlock()
		if consumed+1 >= freeze {
			return nil
		}
		if pt.finished() {
			if err := pt.workerErr(); err != nil {
				return fmt.Errorf("shard: donor partition %d failed before its tail landed: %w", pt.idx, err)
			}
			return fmt.Errorf("shard: donor partition %d stopped %d records before its tail landed", pt.idx, freeze-1-consumed)
		}
		time.Sleep(time.Millisecond)
	}
}

// pendingMoving enumerates moving keys still donor-owned, sorted for a
// deterministic cutover order. Keys whose entire history is past the
// freeze point never appear — their records live only in the
// destination's WAL, and the finish flip releases them wholesale.
func (rt *Runtime) pendingMoving(cut *cutover) []string {
	var keys []string
	seen := make(map[string]bool)
	for i := 0; i < cut.from; i++ {
		pt := rt.parts[i]
		pt.feedMu.Lock()
		tails := pt.keyed.Tails()
		pt.feedMu.Unlock()
		for k := range tails {
			if seen[k] || !cut.moving(k) || cut.keyPhase(k) >= phaseCommitted {
				continue
			}
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// moveKey cuts one pending key over: capture → stage → commit → install
// → release. Returns the number of window-tail lines that moved.
func (rt *Runtime) moveKey(cut *cutover, j *liveJournal, o liveOpts, key string) (int, error) {
	donor := rt.parts[cut.oldRing.Partition(key)]
	dest := rt.parts[cut.newRing.Partition(key)]
	if err := o.callHook("tail-landed", key); err != nil {
		return 0, err
	}

	// Capture: flush pending windows so the tail is consistent, then
	// snapshot the key's window state and the donor's event space. The
	// tail is final — the donor feeds nothing past its freeze point.
	donor.feedMu.Lock()
	donor.keyed.Flush()
	tail, _ := donor.keyed.Tail(key)
	sp := KeySplice{
		Version:  1,
		Key:      key,
		Tail:     tail,
		Events:   donor.pipe.Parser().Export(),
		Patterns: donor.pipe.Library().Export(),
	}
	donor.feedMu.Unlock()

	// Stage: durable in the destination's directory before the commit.
	if err := writeJSONFile(splicePath(dest.dir, key), sp); err != nil {
		return 0, fmt.Errorf("shard: staging splice for key %q: %w", key, err)
	}
	if err := o.callHook("staged", key); err != nil {
		return 0, err
	}

	// Commit: the journal entry is the per-key manifest — from here the
	// key is destination-owned and recovery rolls it forward.
	j.Keys[key] = "committed"
	if err := saveJournal(rt.cfg.Dir, j); err != nil {
		return 0, err
	}
	cut.setPhase(key, phaseCommitted)
	if err := o.callHook("committed", key); err != nil {
		return 0, err
	}

	// Install: splice into the live destination; the donor forgets the
	// key (its next persist drops the tail — the journal, not the donor's
	// state file, is what recovery trusts in the interim).
	if err := rt.applySplice(dest, sp); err != nil {
		return 0, err
	}
	donor.feedMu.Lock()
	donor.keyed.TakeTails(func(k string) bool { return k == key })
	donor.forceSave = true
	donor.feedMu.Unlock()

	if err := rt.releaseKey(cut, j, key); err != nil {
		return 0, err
	}
	if err := o.callHook("released", key); err != nil {
		return 0, err
	}
	return len(tail.Lines), nil
}

// applySplice merges one staged splice into the live destination:
// donor events merge by template into the running parser, the event
// table extends to cover new ids, pattern verdicts translate into the
// destination's id space (its own verdicts win), and the key's window
// tail restores. Idempotent — a destination that already carries the
// key's Spliced marker is left alone, and re-merging the same donor
// export translates onto the same ids.
func (rt *Runtime) applySplice(dest *partition, sp KeySplice) error {
	dest.feedMu.Lock()
	defer dest.feedMu.Unlock()
	if dest.spliced[sp.Key] {
		return nil
	}
	translate, err := dest.pipe.Parser().Merge(sp.Events)
	if err != nil {
		return fmt.Errorf("shard: merging donor events for key %q: %w", sp.Key, err)
	}
	if err := dest.pipe.SyncTable(); err != nil {
		return fmt.Errorf("shard: extending destination event table for key %q: %w", sp.Key, err)
	}
	lib := dest.pipe.Library()
	lib.Import(translatePatterns(sp.Patterns, translate, lib.Contains))
	if len(sp.Tail.Lines) > 0 || sp.Tail.SincePrev > 0 {
		dest.keyed.Restore(map[string]pipeline.WindowTail{sp.Key: sp.Tail})
	}
	if dest.spliced == nil {
		dest.spliced = make(map[string]bool)
	}
	dest.spliced[sp.Key] = true
	dest.forceSave = true
	return nil
}

// ensureSpliced rolls a committed key forward on resume: if the
// destination's durable state predates the splice (no Spliced marker),
// re-apply it from the staged file — guaranteed present, it was fsynced
// before the journal entry.
func (rt *Runtime) ensureSpliced(cut *cutover, key string) error {
	destIdx := cut.newRing.Partition(key)
	dest := rt.byIdx[destIdx]
	if dest == nil {
		return fmt.Errorf("shard: destination partition %d for key %q is not open in this runtime", destIdx, key)
	}
	dest.feedMu.Lock()
	done := dest.spliced[key]
	dest.feedMu.Unlock()
	if done {
		return nil
	}
	sp, err := loadSplice(splicePath(dest.dir, key))
	if err != nil {
		return err
	}
	return rt.applySplice(dest, sp)
}

// releaseKey records the release durably, then wakes the destination's
// parked consumer and flips the router to destination-only for the key.
func (rt *Runtime) releaseKey(cut *cutover, j *liveJournal, key string) error {
	j.Keys[key] = "released"
	if err := saveJournal(rt.cfg.Dir, j); err != nil {
		return err
	}
	cut.setPhase(key, phaseReleased)
	return nil
}

// finishCutover ends the cutover: every partition restamps and persists
// on the new layout, the journal is removed (the end commit point), and
// the router swaps rings — all under the route write lock, so no append
// can land between the journal's removal and the swap (a record
// double-written after the journal was gone would be fed twice on the
// next recovery).
func (rt *Runtime) finishCutover(cut *cutover) error {
	rt.routeMu.Lock()
	defer rt.routeMu.Unlock()
	for _, pt := range rt.parts {
		pt.feedMu.Lock()
		pt.layout = cut.to
		pt.ring = cut.newRing
		pt.forceSave = true
		err := pt.flushCommit()
		pt.feedMu.Unlock()
		if err != nil {
			return fmt.Errorf("shard: persisting partition %d on the new layout: %w", pt.idx, err)
		}
	}
	if err := os.Remove(journalPath(rt.cfg.Dir)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("shard: removing cutover journal: %w", err)
	}
	if err := syncDir(rt.cfg.Dir); err != nil {
		return err
	}
	// The journal is gone — the cutover is over. Clear the markers and
	// staged files it governed (a crash in here leaves stragglers that
	// journal-less opens sweep).
	for _, pt := range rt.parts {
		pt.feedMu.Lock()
		pt.spliced = nil
		pt.feedMu.Unlock()
	}
	sweepSplices(partitionDir(rt.cfg.Dir, cut.to-1))
	rt.part = cut.newRing
	rt.cfg.Shards = cut.to
	rt.reg.Gauge("shard.partitions").Set(int64(cut.to))
	rt.reg.Gauge("shard.cutover_active").Set(0)
	cut.mu.Lock()
	cut.finished = true
	cut.cond.Broadcast()
	cut.mu.Unlock()
	rt.cut.Store(nil)
	return nil
}

// resumeCutover rebuilds the in-memory cutover from a journal found at
// Open. Partitions are open but no worker is running yet: committed and
// released keys are scrubbed from donor window state here (their donors
// may have crashed before persisting the drop), and the cutover is
// published so workers start under it. Open then drives it to
// completion before returning.
func (rt *Runtime) resumeCutover(j *liveJournal) (*cutover, error) {
	oldRing := NewPartitionerVnodes(j.From, rt.cfg.Vnodes)
	cut := newCutover(j.From, j.To, oldRing, rt.part)
	for i := 0; i < j.From; i++ {
		off, ok := j.Freeze[i]
		if !ok {
			return nil, fmt.Errorf("shard: cutover journal has no freeze offset for donor partition %d", i)
		}
		cut.freeze[i] = off
	}
	for k, name := range j.Keys {
		ph, ok := journalPhaseNames[name]
		if !ok {
			return nil, fmt.Errorf("shard: cutover journal has unknown phase %q for key %q", name, k)
		}
		cut.phase[k] = ph
	}
	for i := 0; i < j.From; i++ {
		pt := rt.parts[i]
		pt.keyed.TakeTails(func(k string) bool { return cut.phase[k] >= phaseCommitted })
	}
	// Re-apply the splice of every destination-owned key whose
	// destination state predates it — before any worker runs, because a
	// released key's records are not gated and must never be fed ahead of
	// its restored tail.
	moved := make([]string, 0, len(cut.phase))
	for k := range cut.phase {
		moved = append(moved, k)
	}
	sort.Strings(moved)
	for _, k := range moved {
		if err := rt.ensureSpliced(cut, k); err != nil {
			return nil, err
		}
	}
	rt.cut.Store(cut)
	rt.reg.Gauge("shard.cutover_active").Set(1)
	return cut, nil
}
