package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"logsynergy/internal/broker"
	"logsynergy/internal/fault"
	"logsynergy/internal/pipeline"
)

// Chaos proofs for the isolation claims: a fault injected into one shard
// is invisible to the others — output stays bit-identical to the
// fault-free reference (transient faults), and a stalled shard sheds
// load for its own keys only (permanent faults).

func noSleep(time.Duration) {}

// jsonDecode decodes a response body into v.
func jsonDecode(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

// TestShardFaultIsolationEquivalence injects transient detect and embed
// faults into exactly one shard. Its resilience guards retry through
// them, so the fleet's output must remain bit-identical to the clean
// single-pipeline reference — and the retries must appear in the faulted
// shard's stats alone.
func TestShardFaultIsolationEquivalence(t *testing.T) {
	keys := eqKeys(12)
	lines := genEqLines(42, 3000, keys)
	ref := runReference(t, lines)

	const shards = 4
	faulted := NewPartitioner(shards).Partition(keys[0])
	freg := fault.New(11)
	freg.SetSleep(noSleep)
	freg.Enable(
		fault.Rule{Point: pipeline.PointDetect, Err: errors.New("inference backend hiccup"), Every: 2},
		fault.Rule{Point: pipeline.PointEmbed, Err: errors.New("encoder hiccup"), Every: 3},
	)

	h := openHarness(t, t.TempDir(), shards, func(cfg *Config) {
		cfg.Pipeline.Resilience = pipeline.ResilienceConfig{Sleep: noSleep}
		cfg.ShardFaults = func(i int) *fault.Registry {
			if i == faulted {
				return freg
			}
			return nil
		}
	})
	h.feed(t, lines)
	h.drain(t)
	if err := h.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	requireEqual(t, "faulted shard", h.result(), ref)

	if n := freg.Injected(pipeline.PointDetect); n == 0 {
		t.Fatal("no detect faults fired; the test proved nothing")
	}
	if r := h.rt.ShardStats(faulted).Retries; r == 0 {
		t.Fatalf("faulted shard %d recorded no retries", faulted)
	}
	for i := 0; i < shards; i++ {
		if i == faulted {
			continue
		}
		if r := h.rt.ShardStats(i).Retries; r != 0 {
			t.Fatalf("healthy shard %d recorded %d retries; faults leaked across shards", i, r)
		}
	}
}

// stalledSetup builds a 2-shard runtime where one shard's consumer is
// permanently broken (every WAL read fails, so its worker dies) over a
// tiny reject-on-full backlog. It returns the harness, the stalled
// partition index, and one key per partition.
func stalledSetup(t *testing.T) (h *shardHarness, stalled int, keyOf map[int]string) {
	t.Helper()
	part := NewPartitioner(2)
	keyOf = map[int]string{}
	for i := 0; len(keyOf) < 2 && i < 10000; i++ {
		k := strconv.Itoa(9000 + i)
		if _, ok := keyOf[part.Partition(k)]; !ok {
			keyOf[part.Partition(k)] = k
		}
	}
	if len(keyOf) < 2 {
		t.Fatal("could not find keys covering both partitions")
	}
	stalled = 0 // keyOf[0] routes to it by construction

	freg := fault.New(7)
	freg.SetSleep(noSleep)
	freg.Enable(fault.Rule{Point: broker.PointRead, Err: errors.New("disk gone")})

	h = openHarness(t, t.TempDir(), 2, func(cfg *Config) {
		cfg.Broker = broker.Config{
			SegmentBytes:    256,
			MaxBacklogBytes: 2048,
			FullPolicy:      broker.FullReject,
			Fsync:           broker.FsyncNever,
		}
		cfg.Pipeline.Resilience = pipeline.ResilienceConfig{Sleep: noSleep}
		cfg.ShardFaults = func(i int) *fault.Registry {
			if i == stalled {
				return freg
			}
			return nil
		}
	})
	return h, stalled, keyOf
}

// fillStalled appends lines keyed to the stalled partition until its
// backlog rejects, returning how many were acked first.
func fillStalled(t *testing.T, h *shardHarness, key string, stalled int) int {
	t.Helper()
	for i := 0; i < 2000; i++ {
		part, _, err := h.rt.Append(fmt.Sprintf("%s filler payload record %d", key, i))
		if err != nil {
			if part != stalled {
				t.Fatalf("rejection came from partition %d, not the stalled %d", part, stalled)
			}
			if !errors.Is(err, broker.ErrBacklogFull) {
				t.Fatalf("stalled partition rejected with %v, want ErrBacklogFull", err)
			}
			return i
		}
	}
	t.Fatal("stalled partition never filled; backpressure is broken")
	return 0
}

// TestShardStalledPartitionBackpressure: the stalled shard's backlog
// fills and 429s (ErrBacklogFull) only lines keyed to it; the healthy
// shard keeps consuming, scoring and committing throughout.
func TestShardStalledPartitionBackpressure(t *testing.T) {
	h, stalled, keyOf := stalledSetup(t)
	healthy := 1 - stalled
	acked := fillStalled(t, h, keyOf[stalled], stalled)
	if acked == 0 {
		t.Fatal("stalled partition accepted nothing before filling")
	}

	// The healthy shard still ingests. Its tiny backlog can be transiently
	// full between commits (retention frees committed segments), so retry
	// briefly — that transient 429-then-accept is the per-partition
	// backpressure working as designed.
	const healthyLines = 60
	for i := 0; i < healthyLines; i++ {
		line := fmt.Sprintf("%s job %d queued ok", keyOf[healthy], i)
		var err error
		for try := 0; try < 200; try++ {
			if _, _, err = h.rt.Append(line); err == nil {
				break
			}
			if !errors.Is(err, broker.ErrBacklogFull) {
				t.Fatalf("healthy append failed with %v", err)
			}
			time.Sleep(time.Millisecond)
		}
		if err != nil {
			t.Fatalf("healthy partition never drained its backlog: %v", err)
		}
	}

	h.drain(t) // returns: the stalled worker is dead, the healthy one drains
	if got := h.rt.ShardStats(healthy).LinesCollected; got != healthyLines {
		t.Fatalf("healthy shard collected %d lines, want %d", got, healthyLines)
	}
	if got := h.rt.ShardStats(stalled).LinesCollected; got != 0 {
		t.Fatalf("stalled shard collected %d lines with a dead consumer", got)
	}
	h.mu.Lock()
	_, stalledScored := h.scores[keyOf[stalled]]
	healthyWindows := len(h.scores[keyOf[healthy]])
	h.mu.Unlock()
	if stalledScored {
		t.Fatal("stalled shard scored windows despite its dead consumer")
	}
	if healthyWindows == 0 {
		t.Fatal("healthy shard scored no windows")
	}
	if got := h.rt.Committed(healthy); got == 0 {
		t.Fatal("healthy shard committed nothing")
	}

	snap := h.rt.Snapshot()
	if snap.Counters["shard.rejected_lines_total"] == 0 {
		t.Fatal("rejected_lines_total counter did not move")
	}
	// Close surfaces the stalled worker's read error.
	if err := h.rt.Close(); err == nil {
		t.Fatal("Close returned nil despite the stalled shard's dead consumer")
	}
}

// TestShardIngestHandlerPartialBackpressure drives the HTTP contract: a
// batch spanning a full partition and a healthy one comes back 429 with
// a per-partition breakdown naming exactly what to retry; healthy-only
// batches still get 202 end to end.
func TestShardIngestHandlerPartialBackpressure(t *testing.T) {
	h, stalled, keyOf := stalledSetup(t)
	defer h.rt.Close()
	healthy := 1 - stalled
	srv := httptest.NewServer(h.rt.IngestHandler(0))
	defer srv.Close()

	post := func(body string) (*http.Response, IngestResponse) {
		t.Helper()
		resp, err := http.Post(srv.URL, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		var ir IngestResponse
		if resp.Header.Get("Content-Type") == "application/json" {
			if err := jsonDecode(resp, &ir); err != nil {
				t.Fatalf("decoding response: %v", err)
			}
		}
		return resp, ir
	}

	// Healthy traffic is a 202 regardless of the other shard's health.
	resp, ir := post(keyOf[healthy] + " warmup a\n" + keyOf[healthy] + " warmup b\n")
	if resp.StatusCode != http.StatusAccepted || ir.Acked != 2 || ir.Rejected != 0 {
		t.Fatalf("healthy batch: status %d, %+v", resp.StatusCode, ir)
	}

	fillStalled(t, h, keyOf[stalled], stalled)

	// Mixed batch: the healthy share lands, the stalled share bounces.
	resp, ir = post(keyOf[healthy] + " mixed ok line\n" + keyOf[stalled] + " mixed doomed line\n")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("mixed batch status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("429 without Retry-After: %v", resp.Header)
	}
	if ir.Acked != 1 || ir.Rejected != 1 {
		t.Fatalf("mixed batch accounting: %+v", ir)
	}
	seen := map[int]PartitionResult{}
	for _, pr := range ir.Partitions {
		seen[pr.Partition] = pr
	}
	if pr := seen[stalled]; pr.Rejected != 1 || pr.Error != "backlog full" {
		t.Fatalf("stalled partition result %+v, want 1 rejected with 'backlog full'", pr)
	}
	if pr := seen[healthy]; pr.Acked != 1 || pr.Error != "" {
		t.Fatalf("healthy partition result %+v, want 1 acked", pr)
	}

	// Method and size guards match the broker's single-node contract.
	if resp, err := http.Get(srv.URL); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: %v / %d, want 405", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	tiny := httptest.NewServer(h.rt.IngestHandler(16))
	defer tiny.Close()
	if resp, err := http.Post(tiny.URL, "text/plain", strings.NewReader(strings.Repeat("x", 64))); err != nil || resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized POST: %v / %d, want 413", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// After intake closes, every routed partition refuses: 503.
	h.rt.CloseIntake()
	resp, _ = post(keyOf[healthy] + " after close\n")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close status %d, want 503", resp.StatusCode)
	}
}

// TestShardAppendBatchPartialAcceptance pins the router's batch
// semantics: one call, per-partition verdicts, healthy shares durable.
func TestShardAppendBatchPartialAcceptance(t *testing.T) {
	h, stalled, keyOf := stalledSetup(t)
	defer h.rt.Close()
	healthy := 1 - stalled
	fillStalled(t, h, keyOf[stalled], stalled)

	results, err := h.rt.AppendBatch([]string{
		keyOf[healthy] + " batch line one",
		keyOf[stalled] + " batch line two",
		keyOf[healthy] + " batch line three",
	})
	if err == nil || !errors.Is(err, broker.ErrBacklogFull) {
		t.Fatalf("batch error %v, want wrapped ErrBacklogFull", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("partition %d", stalled)) {
		t.Fatalf("batch error %q does not name the stalled partition", err)
	}
	byPart := map[int]PartitionResult{}
	for _, r := range results {
		byPart[r.Partition] = r
	}
	if r := byPart[healthy]; r.Acked != 2 || r.Rejected != 0 {
		t.Fatalf("healthy share %+v, want 2 acked", r)
	}
	if r := byPart[stalled]; r.Acked != 0 || r.Rejected != 1 || r.Error != "backlog full" {
		t.Fatalf("stalled share %+v, want 1 rejected", r)
	}
}
