package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"logsynergy/internal/broker"
	"logsynergy/internal/httpapi"
)

// The sharded intake: the router hashes each line's stream key onto a
// partition and appends to that partition's WAL. Backpressure is
// per-partition — a stalled shard whose backlog fills rejects only the
// lines keyed to it, while every other shard keeps acking. The HTTP
// contract extends the broker's: 202 means every line in the batch is in
// some partition's log; 429 carries a per-partition breakdown of what
// was acked and what must be retried.

// ErrNotAssigned is returned when a line's key routes to a partition
// this runtime does not serve (a Subset runtime in a cluster fleet).
// The rejected lines surface to the collector as a "not assigned"
// partition rejection; a front router that sees one reloads its
// manifest view (the assignment has moved under a newer epoch), so the
// collector's retry routes to the partition's current owner.
var ErrNotAssigned = errors.New("shard: partition not assigned to this runtime")

// ErrCutover is returned when a line's key is mid-cutover but this
// runtime does not hold both sides of the double-write (a Subset
// runtime in a fleet whose live rebalance is driven by a front
// router). The rejection is retryable: a cutover-aware router routes
// the key's double-write across nodes; one that is not yet aware
// reloads its view on seeing the "cutover in progress" label.
var ErrCutover = errors.New("shard: key is mid-cutover; route it through a cutover-aware router")

// IngestResponse is the JSON body of a 202 or 429 from the sharded
// /ingest endpoint.
type IngestResponse struct {
	// Acked is the number of lines durably appended (across partitions).
	Acked int `json:"acked"`
	// Rejected is the number of lines refused by per-partition admission
	// control; the collector should retry exactly these.
	Rejected int `json:"rejected"`
	// Partitions breaks the batch down per partition, in partition order.
	Partitions []PartitionResult `json:"partitions,omitempty"`
	// Err is the uniform admin-API error detail on a non-2xx answer,
	// nil on 202. The legacy top-level fields stay populated, so
	// collectors written against the pre-envelope shape keep decoding.
	Err *httpapi.Detail `json:"error,omitempty"`
}

// PartitionResult is one partition's share of an ingest batch.
type PartitionResult struct {
	Partition int `json:"partition"`
	Acked     int `json:"acked"`
	Rejected  int `json:"rejected"`
	// Error classifies the rejection ("backlog full", "closed"), empty on
	// success.
	Error string `json:"error,omitempty"`
}

// Append routes one line to its partition's WAL and returns the
// partition index and the assigned offset within that partition's log.
// A full partition returns an error wrapping broker.ErrBacklogFull that
// names the partition; other partitions are unaffected.
//
// During a live cutover a moving key that has not been released yet is
// double-written — appended to both the donor's WAL (reported partition
// and offset) and the destination's — and acked only when both appends
// land; a released moving key routes to the destination. Non-moving
// keys are untouched.
func (rt *Runtime) Append(line string) (part int, off uint64, err error) {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	key := rt.cfg.KeyFunc(line)
	if cut := rt.cut.Load(); cut != nil && cut.moving(key) {
		if cut.keyPhase(key) < phaseReleased {
			return rt.appendDouble(cut, line)
		}
		part = cut.newRing.Partition(key)
	} else {
		part = rt.part.Partition(key)
	}
	pt := rt.byIdx[part]
	if pt == nil {
		rt.rejectedByBP.Inc()
		return part, 0, fmt.Errorf("partition %d: %w", part, ErrNotAssigned)
	}
	off, err = pt.bk.Append(line)
	if err != nil {
		rt.rejectedByBP.Inc()
		return part, 0, fmt.Errorf("partition %d: %w", part, err)
	}
	rt.routedLines.Inc()
	return part, off, nil
}

// appendDouble double-writes one unreleased moving key's line. The
// donor's copy sits past its freeze point and is never fed — the
// destination's copy is the one detection consumes — so the line is
// acked only when both appends land: a donor-only copy after a
// destination failure is simply a skipped record, and at-least-once
// intake has the producer retry.
func (rt *Runtime) appendDouble(cut *cutover, line string) (int, uint64, error) {
	key := rt.cfg.KeyFunc(line)
	donor := cut.oldRing.Partition(key)
	dest := cut.newRing.Partition(key)
	if rt.byIdx[donor] == nil || rt.byIdx[dest] == nil {
		rt.rejectedByBP.Inc()
		return donor, 0, fmt.Errorf("partition %d: %w", donor, ErrCutover)
	}
	off, err := rt.byIdx[donor].bk.Append(line)
	if err != nil {
		rt.rejectedByBP.Inc()
		return donor, 0, fmt.Errorf("partition %d: %w", donor, err)
	}
	if _, err := rt.byIdx[dest].bk.Append(line); err != nil {
		rt.rejectedByBP.Inc()
		return dest, 0, fmt.Errorf("partition %d: %w", dest, err)
	}
	rt.routedLines.Inc()
	return donor, off, nil
}

// AppendBatch routes a batch of lines to their partitions, appending
// each partition's share as one batch. Acceptance is per-partition: the
// returned results say what each partition acked or rejected, and the
// error (if non-nil) wraps the first partition failure. Lines for
// healthy partitions are durably appended even when another partition
// rejects its share. Mid-cutover, unreleased moving keys' shares are
// double-written (donor first, then destination; acked under the donor
// only when both land) and released moving keys' shares route to the
// destination.
func (rt *Runtime) AppendBatch(lines []string) ([]PartitionResult, error) {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	cut := rt.cut.Load()
	n := len(rt.byIdx)
	byPart := make([][]string, n)
	double := make([][]string, n) // unreleased moving shares, grouped by donor
	for _, line := range lines {
		key := rt.cfg.KeyFunc(line)
		if cut != nil && cut.moving(key) {
			if cut.keyPhase(key) < phaseReleased {
				d := cut.oldRing.Partition(key)
				double[d] = append(double[d], line)
			} else {
				p := cut.newRing.Partition(key)
				byPart[p] = append(byPart[p], line)
			}
			continue
		}
		p := rt.part.Partition(key)
		byPart[p] = append(byPart[p], line)
	}
	var results []PartitionResult
	var firstErr error
	reject := func(res *PartitionResult, p, count int, err error) {
		res.Rejected += count
		if res.Error == "" {
			res.Error = RejectionLabel(err)
		}
		rt.rejectedByBP.Add(int64(count))
		if firstErr == nil {
			firstErr = fmt.Errorf("partition %d: %w", p, err)
		}
	}
	for p := 0; p < n; p++ {
		plain, dbl := byPart[p], double[p]
		total := len(plain) + len(dbl)
		if total == 0 {
			continue
		}
		// A partition's answer is all-or-nothing across its plain and
		// double-write shares. Callers attribute rejections per partition
		// row, not per line — a stale front router that cannot tell a
		// moving key from a staying one retries every line it routed to a
		// row whose Error is set. A mixed row (plain acked, double
		// rejected) would make it re-append — and re-detect — the acked
		// lines; a homogeneous rejection makes the retry land each line
		// exactly once.
		res := PartitionResult{Partition: p}
		destIdx := -1
		if len(dbl) > 0 {
			destIdx = cut.to - 1
		}
		switch {
		case rt.byIdx[p] == nil:
			reject(&res, p, total, ErrNotAssigned)
		case destIdx >= 0 && rt.byIdx[destIdx] == nil:
			// This subset runtime lacks the double-write's destination:
			// bounce the whole partition share before appending anything,
			// so the router reloads its cutover view and retries all of it.
			reject(&res, p, total, ErrCutover)
		default:
			// Donor copies first, then the plain share, then the
			// destination copies. A failure rejects the whole unit; at the
			// first two failure points nothing fed has landed (donor
			// double-write copies sit past the freeze and are never fed),
			// so the retry is exact. Only a destination append failing
			// after the plain share landed — a fresh, near-empty backlog
			// refusing — would leave the retry with a duplicate.
			ok := true
			if len(dbl) > 0 {
				if _, _, err := rt.byIdx[p].bk.AppendBatch(dbl); err != nil {
					reject(&res, p, total, err)
					ok = false
				}
			}
			if ok && len(plain) > 0 {
				if _, _, err := rt.byIdx[p].bk.AppendBatch(plain); err != nil {
					reject(&res, p, total, err)
					ok = false
				}
			}
			if ok && len(dbl) > 0 {
				if _, _, err := rt.byIdx[destIdx].bk.AppendBatch(dbl); err != nil {
					reject(&res, destIdx, total, err)
					ok = false
				}
			}
			if ok {
				res.Acked = total
				rt.routedLines.Add(int64(total))
			}
		}
		results = append(results, res)
	}
	return results, firstErr
}

// RejectionLabel classifies an append error for the wire: the stable
// per-partition Error strings of an IngestResponse.
func RejectionLabel(err error) string {
	switch {
	case errors.Is(err, broker.ErrBacklogFull):
		return "backlog full"
	case errors.Is(err, broker.ErrClosed):
		return "closed"
	case errors.Is(err, ErrNotAssigned):
		return "not assigned"
	case errors.Is(err, ErrCutover):
		return "cutover in progress"
	default:
		return err.Error()
	}
}

// IngestHandler returns the sharded /ingest HTTP handler. maxBatchBytes
// bounds one request body (<= 0 selects broker.DefaultMaxBatchBytes).
// Status mapping:
//
//	202 every line acked (body: IngestResponse)
//	429 some partition rejected its share — body carries the
//	    per-partition breakdown so the collector retries only the
//	    rejected lines (Retry-After: 1)
//	503 every routed partition refused because intake is closed
//	413 request body exceeds the batch limit
//	405 anything but POST
func (rt *Runtime) IngestHandler(maxBatchBytes int64) http.Handler {
	if maxBatchBytes <= 0 {
		maxBatchBytes = broker.DefaultMaxBatchBytes
	}
	requests := rt.reg.Counter("shard.ingest_requests_total")
	oversized := rt.reg.Counter("shard.ingest_oversized_total")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		if r.Method != http.MethodPost {
			httpapi.MethodNotAllowed(w, http.MethodPost, "ingest accepts POST only")
			return
		}
		if r.ContentLength > maxBatchBytes {
			oversized.Inc()
			httpapi.Error(w, http.StatusRequestEntityTooLarge, httpapi.Detail{
				Code:    httpapi.CodeTooLarge,
				Message: fmt.Sprintf("batch of %d bytes exceeds limit %d", r.ContentLength, maxBatchBytes),
			})
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				oversized.Inc()
				httpapi.Error(w, http.StatusRequestEntityTooLarge, httpapi.Detail{
					Code:    httpapi.CodeTooLarge,
					Message: fmt.Sprintf("batch exceeds limit %d bytes", maxBatchBytes),
				})
				return
			}
			httpapi.Error(w, http.StatusBadRequest, httpapi.Detail{
				Code:    httpapi.CodeBadRequest,
				Message: "reading request body: " + err.Error(),
			})
			return
		}
		lines := splitBatch(body)
		resp := IngestResponse{}
		if len(lines) > 0 {
			results, _ := rt.AppendBatch(lines)
			resp.Partitions = results
			allClosed := len(results) > 0
			for _, res := range results {
				resp.Acked += res.Acked
				resp.Rejected += res.Rejected
				if res.Error != "closed" {
					allClosed = false
				}
			}
			if allClosed {
				httpapi.Error(w, http.StatusServiceUnavailable, httpapi.Detail{
					Code:       httpapi.CodeClosed,
					Message:    "intake closed",
					Partitions: results,
				})
				return
			}
		}
		if resp.Rejected > 0 {
			d := httpapi.Detail{
				Code:        httpapi.CodeBackpressure,
				Message:     fmt.Sprintf("%d of %d lines rejected; retry the rejected partitions' shares", resp.Rejected, len(lines)),
				RetryAfterS: 1,
				Partitions:  resp.Partitions,
			}
			resp.Err = &d
			httpapi.ErrorWithBody(w, http.StatusTooManyRequests, d, resp)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(resp)
	})
}

// splitBatch parses a newline-delimited body into log lines, tolerating
// CRLF and dropping empty lines.
func splitBatch(body []byte) []string {
	raw := strings.Split(string(body), "\n")
	lines := make([]string, 0, len(raw))
	for _, l := range raw {
		l = strings.TrimSuffix(l, "\r")
		if l == "" {
			continue
		}
		lines = append(lines, l)
	}
	return lines
}
