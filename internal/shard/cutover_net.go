package shard

import (
	"fmt"
	"sort"
)

// The networked live cutover: the same per-key protocol live.go drives
// in-process, decomposed into primitives a cluster coordinator calls
// over each node's admin surface. The division of labor:
//
//   - the coordinator (cluster.Router.LiveRebalance) owns the journal —
//     it lives in the cluster directory next to the manifest, not in
//     any runtime root — and drives the per-key sequence: capture on
//     the donor's node, stage on the destination's, commit in the
//     journal, install, forget, release.
//   - each node's runtime holds the node-local invariants: BeginCutover
//     captures freeze offsets under the route write lock (no append can
//     land between a donor's captured offset and the start of gating),
//     workers gate and park exactly as in-process, and CompleteCutover
//     restamps owned partitions on the new layout.
//
// A node that crashes mid-cutover restarts into the journaled state via
// Config.Cutover (the cluster layer passes the journal's spec) and then
// serves passively until the coordinator resumes driving.

// CutoverSpec carries a networked live cutover's parameters from the
// coordinator's journal to a node's runtime.
type CutoverSpec struct {
	// From and To are the old and new partition counts (To = From+1).
	From int `json:"from"`
	To   int `json:"to"`
	// Vnodes is the ring's virtual-node override the cutover was
	// computed with (0 = default).
	Vnodes int `json:"vnodes"`
	// Freeze maps donor partition → first double-written offset. At the
	// initial begin the coordinator leaves it empty — each node captures
	// offsets for the donors it owns and reports them back; on resume it
	// carries the journal's recorded offsets.
	Freeze map[int]uint64 `json:"freeze,omitempty"`
	// Keys is the journal's per-key ledger (key → "committed" |
	// "released"); pending keys are absent.
	Keys map[string]string `json:"keys,omitempty"`
	// Dest marks this runtime as the destination partition's host: it
	// opens partition To-1 on the new layout.
	Dest bool `json:"dest,omitempty"`
}

// CutoverBeginResult is what BeginCutover reports back to the
// coordinator.
type CutoverBeginResult struct {
	// Freeze maps the donor partitions this runtime owns to their
	// freeze offsets (captured now, or the cutover's existing ones on an
	// idempotent re-begin).
	Freeze map[int]uint64 `json:"freeze,omitempty"`
	// Finished is set when the runtime already serves To partitions — a
	// finish landed before this begin was retried; there is nothing to
	// (re)start.
	Finished bool `json:"finished,omitempty"`
}

// CutoverStatus summarizes an active live cutover for a status answer.
type CutoverStatus struct {
	From int `json:"from"`
	To   int `json:"to"`
	// Pending counts moving keys still donor-owned on partitions this
	// runtime serves; Committed and Released count journaled phases the
	// runtime has been told about.
	Pending   int `json:"pending"`
	Committed int `json:"committed"`
	Released  int `json:"released"`
}

// advance moves a key's phase forward (never back — syncs can arrive
// out of order) and wakes the destination's parked consumer.
func (c *cutover) advance(key string, phase int) {
	c.mu.Lock()
	if phase > c.phase[key] {
		c.phase[key] = phase
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// BeginCutover flips this runtime into a networked live cutover: the
// route write lock is held while freeze offsets are captured for owned
// donors, partition To-1 opens on the new layout (when spec.Dest), and
// the cutover is published — from the caller's view one atomic step, so
// no append lands between a donor's captured freeze offset and the
// start of gating. Idempotent: re-beginning the same (From, To) syncs
// the spec's per-key phases and reports the existing freeze offsets; a
// runtime already serving To partitions answers Finished.
func (rt *Runtime) BeginCutover(spec CutoverSpec) (*CutoverBeginResult, error) {
	rt.liveMu.Lock()
	defer rt.liveMu.Unlock()
	rt.routeMu.Lock()
	defer rt.routeMu.Unlock()

	if cut := rt.cut.Load(); cut != nil {
		if cut.from != spec.From || cut.to != spec.To {
			return nil, fmt.Errorf("shard: a live cutover %d -> %d is already in progress; cannot begin %d -> %d",
				cut.from, cut.to, spec.From, spec.To)
		}
		for k, name := range spec.Keys {
			ph, ok := journalPhaseNames[name]
			if !ok {
				return nil, fmt.Errorf("shard: unknown cutover phase %q for key %q", name, k)
			}
			cut.advance(k, ph)
		}
		return &CutoverBeginResult{Freeze: rt.ownedFreezesLocked(cut)}, nil
	}
	if rt.cfg.Shards == spec.To {
		return &CutoverBeginResult{Finished: true}, nil
	}
	if rt.cfg.Shards != spec.From {
		return nil, fmt.Errorf("shard: cutover begins at %d partitions but this runtime serves %d", spec.From, rt.cfg.Shards)
	}
	if spec.To != spec.From+1 {
		return nil, fmt.Errorf("shard: live cutover grows one partition at a time (%d -> %d)", spec.From, spec.To)
	}
	if spec.Vnodes != rt.cfg.Vnodes {
		return nil, fmt.Errorf("shard: cutover was computed with Vnodes=%d but this runtime uses %d", spec.Vnodes, rt.cfg.Vnodes)
	}

	newRing := NewPartitionerVnodes(spec.To, rt.cfg.Vnodes)
	cut := newCutover(spec.From, spec.To, rt.part, newRing)
	for k, name := range spec.Keys {
		ph, ok := journalPhaseNames[name]
		if !ok {
			return nil, fmt.Errorf("shard: unknown cutover phase %q for key %q", name, k)
		}
		cut.phase[k] = ph
	}

	// Every participant's routing table grows to To — Append indexes
	// byIdx by new-ring partitions for released keys even on pure-donor
	// nodes (where the destination slot stays nil and rejects).
	rt.byIdx = append(rt.byIdx, nil)
	var dest *partition
	if spec.Dest {
		accept := func(s int) bool { return s == 0 || s == spec.From || s == spec.To }
		var err error
		dest, err = rt.openPartitionAt(spec.To-1, openOpts{layout: spec.To, ring: newRing, acceptStamp: accept, keepSpliced: true})
		if err != nil {
			rt.byIdx = rt.byIdx[:spec.From]
			return nil, fmt.Errorf("shard: opening cutover destination partition %d: %w", spec.To-1, err)
		}
		rt.byIdx[spec.To-1] = dest
	}

	// Freeze offsets: the journal's recorded value wins (resume); owned
	// donors without one capture their next append offset now, under the
	// route write lock.
	for i := 0; i < spec.From; i++ {
		if off, ok := spec.Freeze[i]; ok {
			cut.freeze[i] = off
			continue
		}
		if pt := rt.byIdx[i]; pt != nil {
			cut.freeze[i] = pt.bk.NextOffset()
		}
	}
	// Scrub already-committed keys from owned donor tails and roll their
	// splices forward on an owned destination (the resume-under-traffic
	// path; a fresh begin has no committed keys).
	for i := 0; i < spec.From; i++ {
		pt := rt.byIdx[i]
		if pt == nil {
			continue
		}
		pt.feedMu.Lock()
		pt.keyed.TakeTails(func(k string) bool { return cut.phase[k] >= phaseCommitted })
		pt.forceSave = true
		pt.feedMu.Unlock()
	}
	if dest != nil {
		moved := make([]string, 0, len(cut.phase))
		for k := range cut.phase {
			moved = append(moved, k)
		}
		sort.Strings(moved)
		for _, k := range moved {
			if cut.newRing.Partition(k) != spec.To-1 {
				continue
			}
			if err := rt.ensureSpliced(cut, k); err != nil {
				dest.cons.Close()
				dest.bk.Close()
				rt.byIdx = rt.byIdx[:spec.From]
				return nil, err
			}
		}
		rt.parts = append(rt.parts, dest)
	}
	rt.cut.Store(cut)
	rt.reg.Gauge("shard.cutover_active").Set(1)
	if dest != nil {
		go dest.run()
	}
	return &CutoverBeginResult{Freeze: rt.ownedFreezesLocked(cut)}, nil
}

// ownedFreezesLocked collects owned donor partitions' freeze offsets.
// Caller holds routeMu.
func (rt *Runtime) ownedFreezesLocked(cut *cutover) map[int]uint64 {
	out := make(map[int]uint64)
	for i := 0; i < cut.from && i < len(rt.byIdx); i++ {
		if rt.byIdx[i] != nil {
			out[i] = cut.freeze[i]
		}
	}
	return out
}

// SyncCutover advances per-key phases from the coordinator's journal
// view — the networked counterpart of the in-process setPhase calls. A
// "released" sync wakes an owned destination's parked consumer; donor
// tails are dropped separately via ForgetKey.
func (rt *Runtime) SyncCutover(keys map[string]string) error {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	cut := rt.cut.Load()
	if cut == nil {
		return fmt.Errorf("shard: no live cutover to sync (runtime serves %d partitions)", rt.cfg.Shards)
	}
	for k, name := range keys {
		ph, ok := journalPhaseNames[name]
		if !ok {
			return fmt.Errorf("shard: unknown cutover phase %q for key %q", name, k)
		}
		cut.advance(k, ph)
	}
	return nil
}

// PendingMovingKeys enumerates moving keys still donor-owned on the
// partitions this runtime serves, sorted — the coordinator's per-node
// work list.
func (rt *Runtime) PendingMovingKeys() ([]string, error) {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	cut := rt.cut.Load()
	if cut == nil {
		return nil, fmt.Errorf("shard: no live cutover in progress")
	}
	var keys []string
	seen := make(map[string]bool)
	for i := 0; i < cut.from && i < len(rt.byIdx); i++ {
		pt := rt.byIdx[i]
		if pt == nil {
			continue
		}
		pt.feedMu.Lock()
		tails := pt.keyed.Tails()
		pt.feedMu.Unlock()
		for k := range tails {
			if seen[k] || !cut.moving(k) || cut.keyPhase(k) >= phaseCommitted {
				continue
			}
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// CaptureKey snapshots one moving key's splice from its donor: the
// key's final window tail plus the donor's full event space, captured
// under the donor's feed lock. Refused until the donor has consumed
// through its freeze point — a non-final tail must never ship.
func (rt *Runtime) CaptureKey(key string) (KeySplice, error) {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	cut := rt.cut.Load()
	if cut == nil {
		return KeySplice{}, fmt.Errorf("shard: no live cutover in progress")
	}
	if !cut.moving(key) {
		return KeySplice{}, fmt.Errorf("shard: key %q does not move in this cutover", key)
	}
	donorIdx := cut.oldRing.Partition(key)
	donor := rt.byIdx[donorIdx]
	if donor == nil {
		return KeySplice{}, fmt.Errorf("shard: donor partition %d for key %q is not served by this runtime", donorIdx, key)
	}
	donor.feedMu.Lock()
	defer donor.feedMu.Unlock()
	if donor.consumed+1 < cut.freeze[donorIdx] {
		return KeySplice{}, fmt.Errorf("shard: donor partition %d has consumed through offset %d of its freeze point %d; capture once the tail lands",
			donorIdx, donor.consumed, cut.freeze[donorIdx])
	}
	donor.keyed.Flush()
	tail, _ := donor.keyed.Tail(key)
	return KeySplice{
		Version:  1,
		Key:      key,
		Tail:     tail,
		Events:   donor.pipe.Parser().Export(),
		Patterns: donor.pipe.Library().Export(),
	}, nil
}

// StageSplice durably writes a captured splice into the destination
// partition's directory — the receiving half of the transfer endpoint.
// Idempotent (rewrites the same file).
func (rt *Runtime) StageSplice(sp KeySplice) error {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	cut := rt.cut.Load()
	if cut == nil {
		return fmt.Errorf("shard: no live cutover in progress")
	}
	if sp.Key == "" {
		return fmt.Errorf("shard: splice names no key")
	}
	destIdx := cut.newRing.Partition(sp.Key)
	dest := rt.byIdx[destIdx]
	if dest == nil {
		return fmt.Errorf("shard: destination partition %d for key %q is not served by this runtime", destIdx, sp.Key)
	}
	if err := writeJSONFile(splicePath(dest.dir, sp.Key), sp); err != nil {
		return fmt.Errorf("shard: staging splice for key %q: %w", sp.Key, err)
	}
	return nil
}

// InstallSplice applies a staged splice to the live destination
// partition (idempotent via the Spliced marker).
func (rt *Runtime) InstallSplice(key string) error {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	cut := rt.cut.Load()
	if cut == nil {
		return fmt.Errorf("shard: no live cutover in progress")
	}
	return rt.ensureSpliced(cut, key)
}

// ForgetKey drops a moved key's window tail from its donor (the next
// persist makes the drop durable; in the interim the coordinator's
// journal is what recovery trusts). Idempotent.
func (rt *Runtime) ForgetKey(key string) error {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	cut := rt.cut.Load()
	if cut == nil {
		return fmt.Errorf("shard: no live cutover in progress")
	}
	donorIdx := cut.oldRing.Partition(key)
	donor := rt.byIdx[donorIdx]
	if donor == nil {
		return fmt.Errorf("shard: donor partition %d for key %q is not served by this runtime", donorIdx, key)
	}
	donor.feedMu.Lock()
	donor.keyed.TakeTails(func(k string) bool { return k == key })
	donor.forceSave = true
	donor.feedMu.Unlock()
	return nil
}

// CompleteCutover finishes a networked live cutover on this runtime:
// every owned partition restamps and persists on the new layout and the
// routing ring swaps — finishCutover minus the journal removal, which
// belongs to the coordinator (the journal is the cluster's, not this
// root's). Idempotent: a runtime already serving to partitions answers
// nil.
func (rt *Runtime) CompleteCutover(to int) error {
	rt.routeMu.Lock()
	defer rt.routeMu.Unlock()
	cut := rt.cut.Load()
	if cut == nil {
		if rt.cfg.Shards == to {
			return nil
		}
		return fmt.Errorf("shard: no live cutover to complete (runtime serves %d partitions, finish asked for %d)", rt.cfg.Shards, to)
	}
	if cut.to != to {
		return fmt.Errorf("shard: live cutover targets %d partitions, finish asked for %d", cut.to, to)
	}
	for _, pt := range rt.parts {
		pt.feedMu.Lock()
		pt.layout = cut.to
		pt.ring = cut.newRing
		pt.forceSave = true
		err := pt.flushCommit()
		pt.feedMu.Unlock()
		if err != nil {
			return fmt.Errorf("shard: persisting partition %d on the new layout: %w", pt.idx, err)
		}
	}
	for _, pt := range rt.parts {
		pt.feedMu.Lock()
		pt.spliced = nil
		pt.feedMu.Unlock()
	}
	if dest := rt.byIdx[cut.to-1]; dest != nil {
		sweepSplices(dest.dir)
	}
	rt.part = cut.newRing
	rt.cfg.Shards = cut.to
	rt.reg.Gauge("shard.partitions").Set(int64(cut.to))
	rt.reg.Gauge("shard.cutover_active").Set(0)
	cut.mu.Lock()
	cut.finished = true
	cut.cond.Broadcast()
	cut.mu.Unlock()
	rt.cut.Store(nil)
	return nil
}

// CutoverStatus reports the active cutover's per-key progress as seen
// by this runtime, or nil outside one.
func (rt *Runtime) CutoverStatus() *CutoverStatus {
	cut := rt.cut.Load()
	if cut == nil {
		return nil
	}
	st := &CutoverStatus{From: cut.from, To: cut.to}
	cut.mu.Lock()
	for _, ph := range cut.phase {
		switch ph {
		case phaseCommitted:
			st.Committed++
		case phaseReleased:
			st.Released++
		}
	}
	cut.mu.Unlock()
	if pending, err := rt.PendingMovingKeys(); err == nil {
		st.Pending = len(pending)
	}
	return st
}

// DirectedAppendBatch appends lines straight to partition part's WAL,
// bypassing ring routing — the fleet router's double-write data path
// during a networked live cutover (the router, not this runtime, knows
// which node holds the other side of each double-write). The usual
// at-least-once rules apply: an error means none of the lines were
// acked by this partition and the caller retries.
func (rt *Runtime) DirectedAppendBatch(part int, lines []string) error {
	rt.routeMu.RLock()
	defer rt.routeMu.RUnlock()
	if part < 0 || part >= len(rt.byIdx) {
		rt.rejectedByBP.Add(int64(len(lines)))
		return fmt.Errorf("partition %d: %w", part, ErrNotAssigned)
	}
	pt := rt.byIdx[part]
	if pt == nil {
		rt.rejectedByBP.Add(int64(len(lines)))
		return fmt.Errorf("partition %d: %w", part, ErrNotAssigned)
	}
	if _, _, err := pt.bk.AppendBatch(lines); err != nil {
		rt.rejectedByBP.Add(int64(len(lines)))
		return fmt.Errorf("partition %d: %w", part, err)
	}
	rt.routedLines.Add(int64(len(lines)))
	return nil
}
