package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logsynergy/internal/drain"
	"logsynergy/internal/pipeline"
)

func TestStateRoundTripV2(t *testing.T) {
	path := statePath(t.TempDir())
	want := partitionState{
		Partitions: 3,
		Consumed:   41,
		Tails: map[string]pipeline.WindowTail{
			"7001": {Lines: []string{"a b c", "d e f"}, SincePrev: 2},
		},
		Events: []drain.SavedEvent{
			{ID: 0, Template: "a b <*>", Example: "a b c", Count: 7},
			{ID: 1, Template: "d e f", Example: "d e f", Count: 1},
		},
		Patterns: []pipeline.PatternEntry{
			{Seq: []int{0, 1, 0}, Score: 0.25},
			{Seq: []int{1, 1, 1}, Score: 0.75},
		},
	}
	if err := saveState(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := loadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != stateVersion || got.Partitions != 3 || got.Consumed != 41 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Tails) != 1 || got.Tails["7001"].SincePrev != 2 || len(got.Tails["7001"].Lines) != 2 {
		t.Fatalf("tails mismatch: %+v", got.Tails)
	}
	if len(got.Events) != 2 || got.Events[1].Template != "d e f" || got.Events[0].Count != 7 {
		t.Fatalf("events mismatch: %+v", got.Events)
	}
	if len(got.Patterns) != 2 || got.Patterns[0].Score != 0.25 || len(got.Patterns[1].Seq) != 3 {
		t.Fatalf("patterns mismatch: %+v", got.Patterns)
	}
}

func TestLoadStateMissingFileIsFresh(t *testing.T) {
	st, err := loadState(statePath(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != stateVersion || st.Consumed != 0 || len(st.Tails) != 0 {
		t.Fatalf("fresh state not empty: %+v", st)
	}
}

// A zero-length state file is a torn write, not a fresh partition:
// loading it silently would drop the Consumed watermark and double-feed
// every restored tail on the next run.
func TestLoadStateRefusesZeroLengthFile(t *testing.T) {
	path := statePath(t.TempDir())
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadState(path); err == nil || !strings.Contains(err.Error(), "zero length") {
		t.Fatalf("want zero-length error, got %v", err)
	}
}

// Pre-versioning files (no "version" field → 0) and version-1 files (no
// partition stamp, events or patterns) must still load.
func TestLoadStateAcceptsLegacyVersions(t *testing.T) {
	for name, body := range map[string]string{
		"version-0":  `{"consumed":9,"tails":{"k":{"lines":["x y"],"since_prev":1}}}`,
		"version-1":  `{"version":1,"consumed":9,"tails":{"k":{"lines":["x y"],"since_prev":1}}}`,
		"null-tails": `{"version":1,"consumed":9,"tails":null}`,
	} {
		t.Run(name, func(t *testing.T) {
			path := statePath(t.TempDir())
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			st, err := loadState(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Consumed != 9 {
				t.Fatalf("consumed %d, want 9", st.Consumed)
			}
			if st.Partitions != 0 {
				t.Fatalf("legacy file grew a partition stamp: %d", st.Partitions)
			}
		})
	}
}

func TestLoadStateRefusesFutureVersion(t *testing.T) {
	path := statePath(t.TempDir())
	if err := os.WriteFile(path, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadState(path); err == nil {
		t.Fatal("want version error")
	}
}

// A crash between saveState's write and rename leaves a temp file behind;
// loadState must sweep it and return the last durably installed state.
func TestLoadStateSweepsStaleTemp(t *testing.T) {
	dir := t.TempDir()
	path := statePath(dir)
	if err := saveState(path, partitionState{Consumed: 5}); err != nil {
		t.Fatal(err)
	}
	stale := path + ".tmp123456"
	if err := os.WriteFile(stale, []byte(`{"version":2,"consumed":999`), 0o600); err != nil {
		t.Fatal(err)
	}
	st, err := loadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Consumed != 5 {
		t.Fatalf("consumed %d, want 5 (the installed state)", st.Consumed)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived the sweep: %v", err)
	}
}

// A failed install must not corrupt anything: the error surfaces, the
// temp file is removed, and a previously installed good state in the
// same directory still loads.
func TestSaveStateFailedInstallKeepsPreviousGoodState(t *testing.T) {
	dir := t.TempDir()
	good := statePath(dir)
	if err := saveState(good, partitionState{Consumed: 7}); err != nil {
		t.Fatal(err)
	}
	// Renaming a file over an existing directory fails, exercising the
	// install-failure path.
	blocked := filepath.Join(dir, "blocked-target")
	if err := os.Mkdir(blocked, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := saveState(blocked, partitionState{Consumed: 8}); err == nil {
		t.Fatal("want rename failure")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind after failed install", e.Name())
		}
	}
	st, err := loadState(good)
	if err != nil {
		t.Fatal(err)
	}
	if st.Consumed != 7 {
		t.Fatalf("good state damaged: %+v", st)
	}
}
