package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logsynergy/internal/obs"
	"logsynergy/internal/pipeline"
)

// openRaw opens a minimal runtime over dir without failing the test on
// error — for asserting the refusal paths.
func openRaw(dir string, shards int) (*Runtime, error) {
	det, interp, e := eqEnv()
	return Open(Config{
		Shards:   shards,
		Dir:      dir,
		Pipeline: pipeline.DefaultConfig(eqHint),
		Detector: det,
		Interp:   interp,
		Embedder: e,
		Sink:     &pipeline.MemorySink{},
		Metrics:  obs.NewRegistry(),
	})
}

// stagedFiles lists leftover staged state files under root.
func stagedFiles(t *testing.T, root string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(root, "p*", stateFileName+stagedStateSuffix))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// The tentpole proof: fixed-seed traffic split at an arbitrary cut, fed
// pre-cut into an N-shard runtime, rebalanced N→N+1, fed post-cut into
// an (N+1)-shard runtime — the combined per-key score sequences and
// alert multiset are bit-identical to the unsharded keyed reference.
// Moved keys keep their window phase across the move, or the sequences
// would shift. A rebalance attempt that crashes between the export
// (staging) and import (install) phases is injected first; the real
// rebalance must recover from its debris and still be exact.
func TestRebalanceEquivalence(t *testing.T) {
	keys := eqKeys(12)
	lines := genEqLines(4242, 3000, keys)
	ref := runReference(t, lines)
	if len(ref.alerts) == 0 {
		t.Fatal("reference produced no alerts; the comparison is vacuous")
	}

	const cut = 1337
	dir := t.TempDir()
	h := openHarness(t, dir, 3, nil)
	h.feed(t, lines[:cut])
	h.drain(t)
	if err := h.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A rebalance that dies after exporting every partition's staged
	// state but before committing: the old layout must be untouched and
	// the next attempt must succeed over the debris.
	boom := errors.New("injected crash")
	if _, err := rebalanceRun(rebalanceOpts{oldDir: dir, oldN: 3, newN: 4, crash: func(phase string) error {
		if phase == "staged" {
			return boom
		}
		return nil
	}}); !errors.Is(err, boom) {
		t.Fatalf("crash injection: %v", err)
	}
	if n := len(stagedFiles(t, dir)); n == 0 {
		t.Fatal("staged crash left no staged files; the injection missed")
	}

	rep, err := Rebalance(dir, "", 3, 4)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if rep.MovedKeys == 0 {
		t.Fatal("no keys moved 3→4; the equivalence run would not exercise a handoff")
	}
	if rep.AlreadyBalanced {
		t.Fatal("fresh rebalance reported as a no-op")
	}
	if len(stagedFiles(t, dir)) != 0 {
		t.Fatal("staged files survived a completed rebalance")
	}
	t.Logf("rebalance 3→4 moved %d keys (%d tail lines) in %v", rep.MovedKeys, rep.MovedLines, rep.Duration)

	h2 := reopenHarness(t, dir, 4, h)
	h2.feed(t, lines[cut:])
	h2.drain(t)
	if err := h2.rt.Close(); err != nil {
		t.Fatalf("Close after rebalance: %v", err)
	}
	requireEqual(t, "rebalance 3→4", h2.result(), ref)
}

// A moved key arrives with its partition's template groups and pattern
// verdicts: the destination re-mints zero drain groups for templates the
// key's history already taught its donor, and its first completed
// windows are pattern-library hits, not model calls.
func TestRebalanceMovedKeyKeepsLibraryAndGroups(t *testing.T) {
	// Pick a key the 2→3 ring growth actually moves.
	p2, p3 := NewPartitioner(2), NewPartitioner(3)
	movedKey := ""
	for _, key := range eqKeys(64) {
		if p3.Partition(key) != p2.Partition(key) {
			movedKey = key
			break
		}
	}
	if movedKey == "" {
		t.Fatal("no candidate key moves 2→3")
	}
	line := func(i int) string { return fmt.Sprintf("%s gc freed %d", movedKey, 10000+i) }

	dir := t.TempDir()
	h := openHarness(t, dir, 2, nil)
	for i := 0; i < 25; i++ {
		if _, _, err := h.rt.Append(line(i)); err != nil {
			t.Fatal(err)
		}
	}
	h.drain(t)
	if err := h.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rep, err := Rebalance(dir, "", 2, 3)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if rep.MovedKeys != 1 {
		t.Fatalf("moved %d keys, want exactly the one", rep.MovedKeys)
	}

	h2 := reopenHarness(t, dir, 3, h)
	for i := 25; i < 35; i++ {
		if _, _, err := h2.rt.Append(line(i)); err != nil {
			t.Fatal(err)
		}
	}
	h2.drain(t)
	dest := p3.Partition(movedKey)
	stats := h2.rt.ShardStats(dest)
	if err := h2.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if stats.LinesCollected != 10 {
		t.Fatalf("destination collected %d lines, want the 10 fed post-rebalance", stats.LinesCollected)
	}
	if stats.NewEvents != 0 {
		t.Fatalf("destination re-minted %d drain groups for an already-seen template", stats.NewEvents)
	}
	if stats.SequencesFormed == 0 {
		t.Fatal("destination completed no windows; the key handoff lost the window phase")
	}
	if stats.PatternMisses != 0 {
		t.Fatalf("destination missed the pattern library %d times; verdicts did not move", stats.PatternMisses)
	}
	if stats.PatternHits != stats.SequencesFormed {
		t.Fatalf("hits %d != windows %d; some window re-scored through the model", stats.PatternHits, stats.SequencesFormed)
	}
}

// Crash on either side of the commit point: before it the old layout
// resumes untouched; after it every open — even at the old shard count —
// rolls the new layout forward, and the old count is then refused.
func TestRebalanceCrashMidway(t *testing.T) {
	keys := eqKeys(10)
	lines := genEqLines(777, 2000, keys)
	ref := runReference(t, lines)

	const cut = 900
	dir := t.TempDir()
	h := openHarness(t, dir, 2, nil)
	h.feed(t, lines[:cut])
	h.drain(t)
	if err := h.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	boom := errors.New("injected crash")
	crashAt := func(phase string) func(string) error {
		return func(p string) error {
			if p == phase {
				return boom
			}
			return nil
		}
	}

	// Crash before the commit point: old layout intact, staged debris
	// discarded by the next open.
	if _, err := rebalanceRun(rebalanceOpts{oldDir: dir, oldN: 2, newN: 3, crash: crashAt("staged")}); !errors.Is(err, boom) {
		t.Fatalf("staged crash: %v", err)
	}
	rt, err := openRaw(dir, 2)
	if err != nil {
		t.Fatalf("old layout must reopen after a pre-commit crash: %v", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := len(stagedFiles(t, dir)); n != 0 {
		t.Fatalf("%d staged files survived recovery", n)
	}

	// Crash after the commit point: the manifest is down, the rebalance
	// is decided.
	if _, err := rebalanceRun(rebalanceOpts{oldDir: dir, oldN: 2, newN: 3, crash: crashAt("committed")}); !errors.Is(err, boom) {
		t.Fatalf("committed crash: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, rebalanceManifestName)); err != nil {
		t.Fatalf("manifest missing after a post-commit crash: %v", err)
	}

	// Opening at the old count rolls forward, then refuses the stale
	// layout — pointing at the rebalance command.
	if _, err := openRaw(dir, 2); err == nil {
		t.Fatal("old shard count accepted after a committed rebalance")
	} else if !strings.Contains(err.Error(), "rebalance") {
		t.Fatalf("refusal does not name the fix: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, rebalanceManifestName)); !os.IsNotExist(err) {
		t.Fatal("manifest survived roll-forward")
	}

	// Re-running the rebalance over the rolled-forward layout is a no-op
	// success, not a conflict.
	rep, err := Rebalance(dir, "", 2, 3)
	if err != nil {
		t.Fatalf("re-run after committed crash: %v", err)
	}
	if !rep.AlreadyBalanced {
		t.Fatal("re-run did not detect the already-installed layout")
	}

	// The new layout resumes the stream exactly.
	h2 := reopenHarness(t, dir, 3, h)
	h2.feed(t, lines[cut:])
	h2.drain(t)
	if err := h2.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	requireEqual(t, "crash/rebalance/resume", h2.result(), ref)
}

// Copy mode: the rebalanced layout lands in a second directory; the
// source stays byte-for-byte usable as a rollback.
func TestRebalanceCopyMode(t *testing.T) {
	keys := eqKeys(8)
	lines := genEqLines(55, 1200, keys)
	ref := runReference(t, lines)

	src := t.TempDir()
	h := openHarness(t, src, 2, nil)
	h.feed(t, lines[:700])
	h.drain(t)
	if err := h.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	dst := filepath.Join(t.TempDir(), "grown")
	rep, err := Rebalance(src, dst, 2, 3)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if rep.Dir != dst {
		t.Fatalf("report dir %q, want %q", rep.Dir, dst)
	}

	// The copy finished: no marker, and the new layout opens at 3.
	if _, err := os.Stat(filepath.Join(dst, rebalanceCopyMarker)); !os.IsNotExist(err) {
		t.Fatal("copy marker survived a completed copy")
	}
	h2 := reopenHarness(t, dst, 3, h)
	h2.feed(t, lines[700:])
	h2.drain(t)
	if err := h2.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	requireEqual(t, "copy-mode rebalance", h2.result(), ref)

	// The source still opens at its original count — the rollback path.
	rt, err := openRaw(src, 2)
	if err != nil {
		t.Fatalf("source layout damaged by copy-mode rebalance: %v", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A non-empty unrelated destination is refused.
	busy := t.TempDir()
	if err := os.WriteFile(filepath.Join(busy, "keep.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Rebalance(src, busy, 2, 3); err == nil {
		t.Fatal("rebalance overwrote a non-empty destination")
	}
}

// Regression: a copy-mode rebalance that crashes after staging but
// before the manifest leaves the destination with orphaned .next files,
// no copy marker, and no manifest. The re-run used to refuse the
// destination as "already exists and is not empty"; it must instead
// recognize the crashed pre-commit copy, clear it, and succeed.
func TestRebalanceCopyModeCrashBeforeManifestRetries(t *testing.T) {
	keys := eqKeys(6)
	lines := genEqLines(77, 900, keys)
	ref := runReference(t, lines)

	src := t.TempDir()
	h := openHarness(t, src, 2, nil)
	h.feed(t, lines[:500])
	h.drain(t)
	if err := h.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	dst := filepath.Join(t.TempDir(), "grown")
	boom := errors.New("injected crash")
	if _, err := rebalanceRun(rebalanceOpts{oldDir: src, newDir: dst, oldN: 2, newN: 3, crash: func(phase string) error {
		if phase == "staged" {
			return boom
		}
		return nil
	}}); !errors.Is(err, boom) {
		t.Fatalf("crash injection: %v", err)
	}
	nexts, _ := filepath.Glob(filepath.Join(dst, "p*", stateFileName+stagedStateSuffix))
	if len(nexts) == 0 {
		t.Fatal("staged crash left no .next files in the copy; the injection missed")
	}
	if _, err := os.Stat(filepath.Join(dst, rebalanceManifestName)); !os.IsNotExist(err) {
		t.Fatalf("manifest present after a pre-commit crash (stat err %v)", err)
	}
	if _, err := os.Stat(filepath.Join(dst, rebalanceCopyMarker)); !os.IsNotExist(err) {
		t.Fatalf("copy marker present after a post-copy crash (stat err %v)", err)
	}

	if _, err := Rebalance(src, dst, 2, 3); err != nil {
		t.Fatalf("re-run after a staged copy-mode crash: %v", err)
	}
	h2 := reopenHarness(t, dst, 3, h)
	h2.feed(t, lines[500:])
	h2.drain(t)
	if err := h2.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	requireEqual(t, "copy-mode crash retry", h2.result(), ref)
}

// Guard rails: unquiesced WALs, mismatched stamps and degenerate counts
// are refused before anything is written.
func TestRebalanceRefusals(t *testing.T) {
	dir := t.TempDir()
	if _, err := Rebalance(dir, "", 2, 2); err == nil {
		t.Fatal("accepted from == to")
	}
	if _, err := Rebalance(dir, "", 0, 2); err == nil {
		t.Fatal("accepted a zero partition count")
	}
	if _, err := Rebalance("", "", 1, 2); err == nil {
		t.Fatal("accepted an empty directory")
	}

	// An unquiesced partition: records appended past the persisted state.
	keys := eqKeys(6)
	lines := genEqLines(31, 600, keys)
	h := openHarness(t, dir, 2, nil)
	h.feed(t, lines)
	h.drain(t)
	if err := h.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Roll one partition's state back to simulate unconsumed WAL records.
	p0 := statePath(filepath.Join(dir, "p0"))
	st, err := loadState(p0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Consumed < 2 {
		t.Fatalf("partition 0 consumed %d records; test needs more traffic", st.Consumed)
	}
	st.Consumed /= 2
	if err := saveState(p0, st); err != nil {
		t.Fatal(err)
	}
	if _, err := Rebalance(dir, "", 2, 3); err == nil || !strings.Contains(err.Error(), "quiesced") {
		t.Fatalf("unquiesced WAL not refused: %v", err)
	}

	// A stamp that contradicts the -from count.
	st.Consumed *= 2
	st.Partitions = 5
	if err := saveState(p0, st); err != nil {
		t.Fatal(err)
	}
	if _, err := Rebalance(dir, "", 2, 3); err == nil || !strings.Contains(err.Error(), "stamped") {
		t.Fatalf("stamp mismatch not refused: %v", err)
	}
}

// The runtime refuses a layout mismatch outright, naming the rebalance
// command that fixes it.
func TestRuntimeRefusesLayoutMismatch(t *testing.T) {
	dir := t.TempDir()
	keys := eqKeys(6)
	lines := genEqLines(13, 600, keys)
	h := openHarness(t, dir, 2, nil)
	h.feed(t, lines)
	h.drain(t)
	if err := h.rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, err := openRaw(dir, 3)
	if err == nil {
		t.Fatal("runtime opened 3 shards over a 2-shard layout")
	}
	if !strings.Contains(err.Error(), "logsynergy rebalance -from 2 -to 3") {
		t.Fatalf("error does not name the rebalance command: %v", err)
	}
}
