package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"logsynergy/internal/lei"
	"logsynergy/internal/obs"
)

// countingInterp counts real renders and can be told to panic.
type countingInterp struct {
	calls    atomic.Int64
	panicsOn string
	// gate, when set, blocks renders until released — lets tests hold a
	// render in flight while other callers pile up on the entry.
	gate chan struct{}
}

func (c *countingInterp) Interpret(hint, template string) lei.Interpretation {
	c.calls.Add(1)
	if c.gate != nil {
		<-c.gate
	}
	if template == c.panicsOn {
		panic("interpreter exploded on " + template)
	}
	return lei.Interpretation{Template: template, Text: hint + ": rendered " + template}
}

func TestInterpCacheMemoizes(t *testing.T) {
	inner := &countingInterp{}
	c := NewInterpCache(inner, obs.NewRegistry())
	first := c.Interpret("sys", "disk <*> full")
	for i := 0; i < 10; i++ {
		got := c.Interpret("sys", "disk <*> full")
		if got != first {
			t.Fatalf("cached interpretation changed: %+v vs %+v", got, first)
		}
	}
	if n := inner.calls.Load(); n != 1 {
		t.Fatalf("inner interpreter called %d times, want 1 (rendered once)", n)
	}
	hits, misses, _ := c.Stats()
	if hits != 10 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 10/1", hits, misses)
	}
	if c.Size() != 1 {
		t.Fatalf("Size() = %d, want 1", c.Size())
	}
}

// Distinct templates and distinct system hints are distinct entries —
// the cache must never serve one system's rendering for another's.
func TestInterpCacheKeysByHintAndTemplate(t *testing.T) {
	inner := &countingInterp{}
	c := NewInterpCache(inner, obs.NewRegistry())
	a := c.Interpret("sysA", "t")
	b := c.Interpret("sysB", "t")
	d := c.Interpret("sysA", "u")
	if a == b || a == d {
		t.Fatalf("entries collided: %+v %+v %+v", a, b, d)
	}
	if n := inner.calls.Load(); n != 3 {
		t.Fatalf("inner called %d times, want 3", n)
	}
	if c.Size() != 3 {
		t.Fatalf("Size() = %d, want 3", c.Size())
	}
}

// The singleflight property: many goroutines racing on the same cold
// template produce exactly one inner render; everyone gets that result.
func TestInterpCacheSingleflight(t *testing.T) {
	inner := &countingInterp{gate: make(chan struct{})}
	c := NewInterpCache(inner, obs.NewRegistry())

	const callers = 16
	results := make([]lei.Interpretation, callers)
	var started, done sync.WaitGroup
	started.Add(callers)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			started.Done()
			results[i] = c.Interpret("sys", "hot template <*>")
			done.Done()
		}(i)
	}
	started.Wait()
	close(inner.gate) // release the winning render
	done.Wait()

	if n := inner.calls.Load(); n != 1 {
		t.Fatalf("inner rendered %d times under %d concurrent callers, want exactly 1", n, callers)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different interpretation", i)
		}
	}
	hits, misses, waits := c.Stats()
	if misses != 1 {
		t.Fatalf("misses=%d, want 1", misses)
	}
	if hits+waits != callers-1 {
		t.Fatalf("hits+waits=%d, want %d", hits+waits, callers-1)
	}
}

// A panicking inner interpreter must not poison the cache: the panic
// propagates (the pipeline's guard handles it), waiters are released,
// and the next call for the same template retries the render.
func TestInterpCachePanicRetries(t *testing.T) {
	inner := &countingInterp{panicsOn: "bad"}
	c := NewInterpCache(inner, obs.NewRegistry())

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.Interpret("sys", "bad")
	}()
	if c.Size() != 0 {
		t.Fatalf("poisoned entry left in cache (size %d)", c.Size())
	}

	inner.panicsOn = "" // the interpreter "recovers"
	got := c.Interpret("sys", "bad")
	if got.Text == "" {
		t.Fatalf("retry after panic returned zero interpretation: %+v", got)
	}
	if n := inner.calls.Load(); n != 2 {
		t.Fatalf("inner called %d times, want 2 (panic + retry)", n)
	}
}

// Hammer the cache from many goroutines over overlapping templates; run
// with -race this is the concurrency safety proof, and the rendered-once
// guarantee must hold for every template.
func TestInterpCacheConcurrentRenderedOnce(t *testing.T) {
	inner := &countingInterp{}
	c := NewInterpCache(inner, obs.NewRegistry())
	const goroutines, templates, rounds = 8, 20, 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tpl := fmt.Sprintf("template <*> kind %d", (g+i)%templates)
				if got := c.Interpret("sys", tpl); got.Template != tpl {
					t.Errorf("wrong entry for %q: %+v", tpl, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := inner.calls.Load(); n != templates {
		t.Fatalf("inner rendered %d times, want exactly %d (one per distinct template)", n, templates)
	}
}
