package baselines

import (
	"math/rand"

	"logsynergy/internal/nn"
	"logsynergy/internal/nn/optim"
	"logsynergy/internal/repr"
	"logsynergy/internal/tensor"
)

// MetaLog (Zhang et al., ICSE 2024) applies meta-learning for
// generalizable cross-system detection: each source system is a meta-task,
// and a GRU-based classifier is meta-trained so that a few gradient steps
// adapt it to a new system. This implementation uses first-order MAML
// (Reptile): for each meta-iteration it clones the meta-parameters, takes
// k inner SGD steps on one source task, and moves the meta-parameters
// toward the adapted weights; finally it fine-tunes on the target slice.
type MetaLog struct {
	// Hidden is the GRU width (paper: 2×100; CPU scale).
	Hidden int
	// InnerSteps and InnerLR control task adaptation.
	InnerSteps int
	InnerLR    float64
	// MetaIterations and MetaLR control the outer loop.
	MetaIterations int
	MetaLR         float64
	Train          trainCfg

	ps  *nn.ParamSet
	gru *nn.GRU
	fc  *nn.Linear
	rng *rand.Rand
}

// NewMetaLog returns the evaluation configuration.
func NewMetaLog() *MetaLog {
	return &MetaLog{Hidden: 32, InnerSteps: 4, InnerLR: 0.01,
		MetaIterations: 60, MetaLR: 0.5, Train: defaultTrainCfg()}
}

// Name implements Method.
func (m *MetaLog) Name() string { return "MetaLog" }

// Fit implements Method.
func (m *MetaLog) Fit(sc *Scenario) {
	m.rng = rand.New(rand.NewSource(sc.Seed + 43))
	dim := sc.Embedder.Dim
	m.ps = nn.NewParamSet()
	m.gru = nn.NewGRU(m.ps, "metalog.gru", m.rng, dim, m.Hidden)
	m.fc = nn.NewLinear(m.ps, "metalog.fc", m.rng, m.Hidden, 1)

	tasks := sc.RawSources()
	samplers := make([]*repr.BalancedSampler, len(tasks))
	for i, tk := range tasks {
		samplers[i] = repr.NewBalancedSampler(tk.Labels, m.Train.PosFraction, m.rng)
	}

	// Outer (Reptile) loop over source meta-tasks.
	for iter := 0; iter < m.MetaIterations; iter++ {
		ti := m.rng.Intn(len(tasks))
		snapshot := m.snapshot()
		for s := 0; s < m.InnerSteps; s++ {
			m.innerStep(tasks[ti], samplers[ti])
		}
		// θ ← θ0 + MetaLR·(θ_adapted − θ0)
		for i, p := range m.ps.All() {
			for j := range p.Value.Data {
				p.Value.Data[j] = snapshot[i].Data[j] + m.MetaLR*(p.Value.Data[j]-snapshot[i].Data[j])
			}
		}
	}

	// Adaptation on the target slice (few labeled samples).
	target := sc.Raw(sc.TargetTrain)
	sampler := repr.NewBalancedSampler(target.Labels, m.Train.PosFraction, m.rng)
	opt := optim.NewAdamW(m.ps, m.Train.LR)
	steps := maxInt(target.Len()/m.Train.Batch, 1) * m.Train.Epochs
	for s := 0; s < steps; s++ {
		idx := sampler.Sample(m.Train.Batch)
		x, labels := target.Gather(idx)
		g := nn.NewGraph()
		loss := g.BCEWithLogits(m.logits(g, x), labels)
		g.Backward(loss)
		m.ps.ClipGradNorm(5)
		opt.Step()
	}
}

// innerStep is one SGD step on a task batch.
func (m *MetaLog) innerStep(task *repr.Dataset, sampler *repr.BalancedSampler) {
	idx := sampler.Sample(m.Train.Batch)
	x, labels := task.Gather(idx)
	g := nn.NewGraph()
	loss := g.BCEWithLogits(m.logits(g, x), labels)
	g.Backward(loss)
	m.ps.ClipGradNorm(5)
	for _, p := range m.ps.All() {
		for j := range p.Value.Data {
			p.Value.Data[j] -= m.InnerLR * p.Grad.Data[j]
		}
	}
	m.ps.ZeroGrad()
}

// logits builds the GRU classifier graph for one batch tensor.
func (m *MetaLog) logits(g *nn.Graph, x *tensor.Tensor) *nn.Node {
	_, last := m.gru.Forward(g, g.Const(x))
	return m.fc.Forward(g, last)
}

// snapshot deep-copies all parameter values.
func (m *MetaLog) snapshot() []*tensor.Tensor {
	out := make([]*tensor.Tensor, 0, len(m.ps.All()))
	for _, p := range m.ps.All() {
		out = append(out, p.Value.Clone())
	}
	return out
}

// Score implements Method.
func (m *MetaLog) Score(sc *Scenario) []float64 {
	test := sc.Raw(sc.TargetTest)
	out := make([]float64, 0, test.Len())
	const chunk = 256
	for start := 0; start < test.Len(); start += chunk {
		end := start + chunk
		if end > test.Len() {
			end = test.Len()
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, _ := test.Gather(idx)
		g := nn.NewGraph()
		logits := m.logits(g, x)
		for _, z := range logits.Value.Data {
			out = append(out, sigmoid(z))
		}
	}
	return out
}
