package baselines

import (
	"math/rand"

	"logsynergy/internal/nn"
	"logsynergy/internal/nn/optim"
	"logsynergy/internal/repr"
	"logsynergy/internal/tensor"
)

// PreLog (Le & Zhang, SIGMOD 2024) pre-trains a sequence encoder on large
// unlabeled log corpora and adapts it to downstream tasks with prompt
// tuning. Under the paper's protocol it pre-trains on the source systems'
// samples and prompt-tunes on the target slice. This implementation
// pre-trains a transformer encoder with masked-event reconstruction
// (predict the embedding of a masked event from its context), then freezes
// the encoder and trains only a small head — the prompt-tuning analogue:
// very few trainable parameters adapt a frozen pre-trained model.
type PreLog struct {
	ModelDim  int
	Heads     int
	FFDim     int
	Depth     int
	MaskProb  float64
	PreEpochs int
	Train     trainCfg

	ps    *nn.ParamSet
	enc   *nn.TransformerEncoder
	recon *nn.Linear
	head  *nn.MLP // prompt-tuned classification head
	hps   *nn.ParamSet
	rng   *rand.Rand
	dim   int
}

// NewPreLog returns the evaluation configuration.
func NewPreLog() *PreLog {
	return &PreLog{ModelDim: 32, Heads: 2, FFDim: 64, Depth: 1,
		MaskProb: 0.3, PreEpochs: 4, Train: defaultTrainCfg()}
}

// Name implements Method.
func (p *PreLog) Name() string { return "PreLog" }

// Fit implements Method.
func (p *PreLog) Fit(sc *Scenario) {
	p.rng = rand.New(rand.NewSource(sc.Seed + 31))
	p.dim = sc.Embedder.Dim
	p.ps = nn.NewParamSet()
	p.enc = nn.NewTransformerEncoder(p.ps, "prelog.enc", p.rng, p.dim, p.ModelDim, p.Heads, p.FFDim, p.Depth, 0.1)
	p.recon = nn.NewLinear(p.ps, "prelog.recon", p.rng, p.ModelDim, p.dim)
	opt := optim.NewAdamW(p.ps, p.Train.LR)

	// Phase 1: masked-event pre-training on pooled source data only.
	pre := repr.Concat(sc.RawSources()...)
	batch := p.Train.Batch
	steps := pre.Len() / batch * p.PreEpochs
	for s := 0; s < steps; s++ {
		idx := randomIndices(p.rng, pre.Len(), batch)
		x, _ := pre.Gather(idx)
		masked, targets, maskRows := p.mask(x)
		g := nn.NewGraph()
		h := p.enc.Forward(g, g.Const(masked), p.rng, true) // [B,T,ModelDim]
		b, t := h.Value.Dim(0), h.Value.Dim(1)
		flat := g.Reshape(h, b*t, p.ModelDim)
		rec := p.recon.Forward(g, g.GatherRows(flat, maskRows))
		loss := g.MSE(rec, targets)
		g.Backward(loss)
		p.ps.ClipGradNorm(5)
		opt.Step()
	}

	// Phase 2: prompt tuning — encoder frozen, only the head trains, on
	// the target slice alone.
	p.hps = nn.NewParamSet()
	p.head = nn.NewMLP(p.hps, "prelog.head", p.rng, p.ModelDim, p.ModelDim, 1)
	hopt := optim.NewAdamW(p.hps, p.Train.LR)
	target := sc.Raw(sc.TargetTrain)
	sampler := repr.NewBalancedSampler(target.Labels, p.Train.PosFraction, p.rng)
	tuneSteps := maxInt(target.Len()/batch, 1) * p.Train.Epochs
	for s := 0; s < tuneSteps; s++ {
		idx := sampler.Sample(batch)
		x, labels := target.Gather(idx)
		g := nn.NewGraph()
		pooled := p.encodeFrozen(g, x)
		loss := g.BCEWithLogits(p.head.Forward(g, pooled), labels)
		g.Backward(loss)
		p.hps.ClipGradNorm(5)
		hopt.Step()
	}
}

// encodeFrozen runs the encoder without exposing its parameters to the
// gradient tape (prompt tuning trains the head only).
func (p *PreLog) encodeFrozen(g *nn.Graph, x *tensor.Tensor) *nn.Node {
	// A fresh graph node from the frozen encoder: run it on a throwaway
	// graph and re-import the pooled values as a constant.
	eg := nn.NewGraph()
	pooled := p.enc.EncodePooled(eg, eg.Const(x), p.rng, false)
	return g.Const(pooled.Value)
}

// mask hides MaskProb of the events: masked positions are zeroed in the
// input; targets collects their original embeddings; maskRows indexes the
// flattened [B*T] rows that were masked.
func (p *PreLog) mask(x *tensor.Tensor) (masked, targets *tensor.Tensor, maskRows []int) {
	b, t, d := x.Dim(0), x.Dim(1), x.Dim(2)
	masked = x.Clone()
	var targetData []float64
	for i := 0; i < b; i++ {
		maskedAny := false
		for s := 0; s < t; s++ {
			if p.rng.Float64() < p.MaskProb {
				row := (i*t + s)
				targetData = append(targetData, x.Data[row*d:(row+1)*d]...)
				maskRows = append(maskRows, row)
				for k := 0; k < d; k++ {
					masked.Data[row*d+k] = 0
				}
				maskedAny = true
			}
		}
		if !maskedAny { // guarantee at least one masked event per sequence
			s := p.rng.Intn(t)
			row := i*t + s
			targetData = append(targetData, x.Data[row*d:(row+1)*d]...)
			maskRows = append(maskRows, row)
			for k := 0; k < d; k++ {
				masked.Data[row*d+k] = 0
			}
		}
	}
	return masked, tensor.FromSlice(targetData, len(maskRows), d), maskRows
}

// Score implements Method.
func (p *PreLog) Score(sc *Scenario) []float64 {
	test := sc.Raw(sc.TargetTest)
	out := make([]float64, 0, test.Len())
	const chunk = 256
	for start := 0; start < test.Len(); start += chunk {
		end := start + chunk
		if end > test.Len() {
			end = test.Len()
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, _ := test.Gather(idx)
		g := nn.NewGraph()
		logits := p.head.Forward(g, p.encodeFrozen(g, x))
		for _, z := range logits.Value.Data {
			out = append(out, sigmoid(z))
		}
	}
	return out
}

func randomIndices(rng *rand.Rand, n, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
