package baselines

import (
	"math"
	"math/rand"

	"logsynergy/internal/nn"
	"logsynergy/internal/nn/optim"
	"logsynergy/internal/repr"
	"logsynergy/internal/tensor"
)

// SpikeLog (Qi et al., TKDE 2023) detects anomalies with a
// potential-assisted spiking neural network under weak supervision: the
// protocol reveals 98% of the anomalous sequences plus the unlabeled rest
// (treated as normal). The leaky integrate-and-fire (LIF) layer integrates
// per-timestep input currents into membrane potentials, emits spikes above
// a threshold, and trains through a surrogate gradient; the readout
// combines the spike rate with the residual membrane potential (the
// "potential-assisted" part).
type SpikeLog struct {
	// Hidden is the LIF layer width (paper: 128; CPU scale).
	Hidden int
	// Threshold is the firing threshold; Decay the membrane leak factor.
	Threshold float64
	Decay     float64
	// SurrogateSlope controls the steepness of the sigmoid surrogate.
	SurrogateSlope float64
	// RevealedAnomalyFraction is the weak-supervision rate (paper: 0.98).
	RevealedAnomalyFraction float64
	Train                   trainCfg

	ps   *nn.ParamSet
	inW  *nn.Linear
	out  *nn.Linear
	rng  *rand.Rand
	once bool
}

// NewSpikeLog returns the evaluation configuration.
func NewSpikeLog() *SpikeLog {
	return &SpikeLog{
		Hidden:                  32,
		Threshold:               1.0,
		Decay:                   0.6,
		SurrogateSlope:          4,
		RevealedAnomalyFraction: 0.98,
		Train:                   defaultTrainCfg(),
	}
}

// Name implements Method.
func (s *SpikeLog) Name() string { return "SpikeLog" }

// lif runs the spiking dynamics over x [B,T,D], returning the mean spike
// rate plus final membrane potential per hidden unit ([B,2*Hidden]).
// Spikes use a hard threshold forward and a sigmoid surrogate backward,
// implemented as surrogate + (hard - surrogate).detach() — the standard
// straight-through construction, expressed here by adding a constant
// correction node.
func (s *SpikeLog) lif(g *nn.Graph, x *nn.Node) *nn.Node {
	b, t := x.Value.Dim(0), x.Value.Dim(1)
	potential := g.Const(tensor.New(b, s.Hidden))
	var rate *nn.Node
	for step := 0; step < t; step++ {
		current := s.inW.Forward(g, g.SelectTime(x, step))
		potential = g.Add(g.Scale(potential, s.Decay), current)
		// Surrogate spike: sigmoid(slope*(V - threshold)).
		surrogate := g.Sigmoid(g.Scale(g.AddScalar(potential, -s.Threshold), s.SurrogateSlope))
		// Hard spike correction (constant: no gradient).
		correction := tensor.New(b, s.Hidden)
		for i, v := range potential.Value.Data {
			hard := 0.0
			if v >= s.Threshold {
				hard = 1
			}
			correction.Data[i] = hard - surrogate.Value.Data[i]
		}
		spike := g.Add(surrogate, g.Const(correction))
		// Soft reset: subtract threshold where spiking.
		potential = g.Sub(potential, g.Scale(spike, s.Threshold))
		if rate == nil {
			rate = spike
		} else {
			rate = g.Add(rate, spike)
		}
	}
	rate = g.Scale(rate, 1/float64(t))
	return g.ConcatCols(rate, potential)
}

// Fit implements Method: weakly supervised training on the target slice
// with 98% of anomalies revealed and the rest treated as normal.
func (s *SpikeLog) Fit(sc *Scenario) {
	s.rng = rand.New(rand.NewSource(sc.Seed + 29))
	target := sc.Raw(sc.TargetTrain)

	labels := make([]bool, target.Len())
	for i, l := range target.Labels {
		if l && s.rng.Float64() < s.RevealedAnomalyFraction {
			labels[i] = true
		}
	}
	weak := &repr.Dataset{System: target.System, X: target.X, Labels: labels,
		Table: target.Table, SeqLen: target.SeqLen}

	s.ps = nn.NewParamSet()
	s.inW = nn.NewLinear(s.ps, "spikelog.in", s.rng, sc.Embedder.Dim, s.Hidden)
	s.out = nn.NewLinear(s.ps, "spikelog.out", s.rng, 2*s.Hidden, 1)
	opt := optim.NewAdamW(s.ps, s.Train.LR)

	clf := &seqClassifier{params: s.ps, enc: func(g *nn.Graph, x *nn.Node, train bool) *nn.Node {
		return s.lif(g, x)
	}, head: s.out}
	clf.fit(weak, s.Train, s.rng, opt)
	s.once = true
}

// Score implements Method.
func (s *SpikeLog) Score(sc *Scenario) []float64 {
	test := sc.Raw(sc.TargetTest)
	out := make([]float64, 0, test.Len())
	const chunk = 256
	for start := 0; start < test.Len(); start += chunk {
		end := start + chunk
		if end > test.Len() {
			end = test.Len()
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, _ := test.Gather(idx)
		g := nn.NewGraph()
		logits := s.out.Forward(g, s.lif(g, g.Const(x)))
		for _, z := range logits.Value.Data {
			out = append(out, 1/(1+math.Exp(-z)))
		}
	}
	return out
}
