package baselines

import (
	"math/rand"

	"logsynergy/internal/nn"
	"logsynergy/internal/nn/optim"
	"logsynergy/internal/repr"
)

// NeuralLog (Le & Zhang, ASE 2021) detects anomalies without log parsing:
// raw message semantics (BERT embeddings in the original; the shared raw
// embedder here) feed a transformer-encoder classifier. It is a supervised
// single-system method; under the paper's cross-system protocol it simply
// pools all labeled training samples from the source systems and the
// target slice, with no transfer mechanism.
type NeuralLog struct {
	// ModelDim, Heads, FFDim mirror the original single-layer transformer
	// (embedding 768, FF 2048) at CPU scale.
	ModelDim int
	Heads    int
	FFDim    int
	Depth    int
	Train    trainCfg
	// SourceOnly trains without the target slice — the paper's "direct
	// application of NeuralLog" transfer-learning ablation arm (§IV-D3).
	SourceOnly bool

	clf *seqClassifier
	enc *nn.TransformerEncoder
	opt *optim.AdamW
}

// NewNeuralLog returns the evaluation configuration.
func NewNeuralLog() *NeuralLog {
	return &NeuralLog{ModelDim: 32, Heads: 2, FFDim: 64, Depth: 1, Train: defaultTrainCfg()}
}

// Name implements Method.
func (n *NeuralLog) Name() string {
	if n.SourceOnly {
		return "NeuralLog (direct)"
	}
	return "NeuralLog"
}

// Fit implements Method.
func (n *NeuralLog) Fit(sc *Scenario) {
	rng := rand.New(rand.NewSource(sc.Seed + 17))
	ps := nn.NewParamSet()
	n.enc = nn.NewTransformerEncoder(ps, "neurallog.enc", rng, sc.Embedder.Dim,
		n.ModelDim, n.Heads, n.FFDim, n.Depth, 0.1)
	encFn := func(g *nn.Graph, x *nn.Node, train bool) *nn.Node {
		return n.enc.EncodePooled(g, x, rng, train)
	}
	n.clf = newSeqClassifier(ps, rng, encFn, n.ModelDim)
	n.opt = optim.NewAdamW(ps, n.Train.LR)

	parts := sc.RawSources()
	if !n.SourceOnly {
		parts = append(parts, sc.Raw(sc.TargetTrain))
	}
	pooled := repr.Concat(parts...)
	n.clf.fit(pooled, n.Train, rng, n.opt)
}

// Score implements Method.
func (n *NeuralLog) Score(sc *Scenario) []float64 {
	return n.clf.score(sc.Raw(sc.TargetTest))
}
