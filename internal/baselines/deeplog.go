package baselines

import (
	"math/rand"

	"logsynergy/internal/logdata"
	"logsynergy/internal/nn"
	"logsynergy/internal/nn/optim"
	"logsynergy/internal/tensor"
)

// DeepLog (Du et al., CCS 2017) models normal execution as a language over
// log events: an LSTM predicts the next event id from a history window,
// and a sequence is anomalous when an observed event falls outside the
// model's top-k predictions (or was never seen in training). Per the
// paper's protocol it is unsupervised and target-only: it trains on the
// normal sequences of the target system's training slice.
type DeepLog struct {
	// History is the prediction context length (events).
	History int
	// TopK is the prediction tolerance (paper's setup: 9).
	TopK int
	// Hidden is the LSTM width.
	Hidden int
	// Epochs and LR control training.
	Epochs int
	LR     float64

	vocab   map[int]int // target event id -> dense class index
	classes int
	ps      *nn.ParamSet
	lstm    *nn.LSTM
	out     *nn.Linear
	rng     *rand.Rand
}

// NewDeepLog returns DeepLog with the evaluation defaults (top-9, as in
// §IV-A2, at CPU-scale width).
func NewDeepLog() *DeepLog {
	return &DeepLog{History: 5, TopK: 9, Hidden: 32, Epochs: 10, LR: 3e-3}
}

// Name implements Method.
func (d *DeepLog) Name() string { return "DeepLog" }

// Fit implements Method: train next-event prediction on the target train
// slice's normal sequences only.
func (d *DeepLog) Fit(sc *Scenario) {
	d.rng = rand.New(rand.NewSource(sc.Seed + 11))
	histories, nexts := d.trainingPairs(sc.TargetTrain)

	d.ps = nn.NewParamSet()
	d.lstm = nn.NewLSTM(d.ps, "deeplog.lstm", d.rng, d.classes, d.Hidden)
	d.out = nn.NewLinear(d.ps, "deeplog.out", d.rng, d.Hidden, d.classes)
	opt := optim.NewAdamW(d.ps, d.LR)

	n := len(histories)
	if n == 0 {
		return
	}
	batch := 64
	for epoch := 0; epoch < d.Epochs; epoch++ {
		perm := d.rng.Perm(n)
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			idx := perm[start:end]
			x := d.oneHotBatch(histories, idx)
			labels := make([]int, len(idx))
			for i, j := range idx {
				labels[i] = nexts[j]
			}
			g := nn.NewGraph()
			_, last := d.lstm.Forward(g, g.Const(x))
			loss := g.CrossEntropyLogits(d.out.Forward(g, last), labels)
			g.Backward(loss)
			d.ps.ClipGradNorm(5)
			opt.Step()
		}
	}
}

// trainingPairs extracts (history, next) pairs from normal sequences and
// builds the event vocabulary.
func (d *DeepLog) trainingPairs(train *logdata.Sequences) (histories [][]int, nexts []int) {
	d.vocab = make(map[int]int)
	for _, s := range train.Samples {
		if s.Label {
			continue // unsupervised: normal patterns only
		}
		for _, id := range s.EventIDs {
			if _, ok := d.vocab[id]; !ok {
				d.vocab[id] = len(d.vocab)
			}
		}
	}
	d.classes = len(d.vocab)
	if d.classes == 0 {
		return nil, nil
	}
	for _, s := range train.Samples {
		if s.Label {
			continue
		}
		for t := d.History; t < len(s.EventIDs); t++ {
			hist := make([]int, d.History)
			for i := 0; i < d.History; i++ {
				hist[i] = d.vocab[s.EventIDs[t-d.History+i]]
			}
			histories = append(histories, hist)
			nexts = append(nexts, d.vocab[s.EventIDs[t]])
		}
	}
	return histories, nexts
}

// oneHotBatch encodes selected histories as [B, History, classes].
func (d *DeepLog) oneHotBatch(histories [][]int, idx []int) *tensor.Tensor {
	x := tensor.New(len(idx), d.History, d.classes)
	for i, j := range idx {
		for t, cls := range histories[j] {
			x.Data[(i*d.History+t)*d.classes+cls] = 1
		}
	}
	return x
}

// Score implements Method: a sequence scores 1 when any event is out of
// vocabulary or outside the model's top-k next-event predictions.
func (d *DeepLog) Score(sc *Scenario) []float64 {
	test := sc.TargetTest
	out := make([]float64, len(test.Samples))
	for i, s := range test.Samples {
		if d.sequenceAnomalous(s.EventIDs) {
			out[i] = 1
		}
	}
	return out
}

func (d *DeepLog) sequenceAnomalous(eventIDs []int) bool {
	if d.classes == 0 {
		return true
	}
	for _, id := range eventIDs {
		if _, ok := d.vocab[id]; !ok {
			return true // unseen template: immediate anomaly
		}
	}
	for t := d.History; t < len(eventIDs); t++ {
		hist := make([]int, d.History)
		for i := 0; i < d.History; i++ {
			hist[i] = d.vocab[eventIDs[t-d.History+i]]
		}
		actual := d.vocab[eventIDs[t]]
		if !d.inTopK(hist, actual) {
			return true
		}
	}
	return false
}

// inTopK predicts the next event for one history and checks membership of
// actual among the TopK most probable classes.
func (d *DeepLog) inTopK(hist []int, actual int) bool {
	x := tensor.New(1, d.History, d.classes)
	for t, cls := range hist {
		x.Data[t*d.classes+cls] = 1
	}
	g := nn.NewGraph()
	_, last := d.lstm.Forward(g, g.Const(x))
	logits := d.out.Forward(g, last).Value
	k := d.TopK
	if k >= d.classes {
		return true
	}
	target := logits.Data[actual]
	higher := 0
	for _, z := range logits.Data {
		if z > target {
			higher++
		}
	}
	return higher < k
}
