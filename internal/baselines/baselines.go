// Package baselines implements the nine comparison methods of the paper's
// evaluation (§IV-A2, Tables IV and V): DeepLog, LogAnomaly, PLELog,
// SpikeLog, NeuralLog, LogRobust, PreLog, LogTAD, LogTransfer and MetaLog.
//
// Every method is reimplemented from scratch on the same substrate as
// LogSynergy (internal/nn) at the same reduced CPU scale, keeping each
// method's architecture family and — crucially — its *data regime*: which
// slices of the training data its paradigm is allowed to see. None of the
// baselines uses LEI; they embed raw templates, exactly as their original
// papers do with word2vec/GloVe/BERT on raw log text.
package baselines

import (
	"math"
	"math/rand"

	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/logdata"
	"logsynergy/internal/metrics"
	"logsynergy/internal/nn"
	"logsynergy/internal/nn/optim"
	"logsynergy/internal/repr"
)

// Scenario is one cross-system evaluation setting: labeled training slices
// from the source systems, a small labeled training slice of the target
// system, and the target's held-out test stream.
type Scenario struct {
	// Sources holds each source system's training sequences.
	Sources []*logdata.Sequences
	// TargetTrain is the target system's (small) training slice.
	TargetTrain *logdata.Sequences
	// TargetTest is the target system's evaluation slice.
	TargetTest *logdata.Sequences
	// Embedder provides the shared raw-text feature space.
	Embedder *embed.Embedder
	// Seed drives all method-internal randomness.
	Seed int64

	cache map[*logdata.Sequences]*repr.Dataset
}

// Raw returns (and caches) the raw-template representation of a sequence
// set: templates embedded without interpretation (lei.Identity), the
// representation every baseline operates on.
func (sc *Scenario) Raw(seqs *logdata.Sequences) *repr.Dataset {
	if sc.cache == nil {
		sc.cache = make(map[*logdata.Sequences]*repr.Dataset)
	}
	if d, ok := sc.cache[seqs]; ok {
		return d
	}
	d := repr.Build(seqs, lei.Identity{}, sc.Embedder)
	sc.cache[seqs] = d
	return d
}

// RawSources returns the raw representation of every source training set.
func (sc *Scenario) RawSources() []*repr.Dataset {
	out := make([]*repr.Dataset, len(sc.Sources))
	for i, s := range sc.Sources {
		out[i] = sc.Raw(s)
	}
	return out
}

// Method is one log anomaly detection method under the paper's protocol.
type Method interface {
	// Name returns the method's display name as used in the tables.
	Name() string
	// Fit trains the method on the scenario's training data.
	Fit(sc *Scenario)
	// Score returns anomaly probabilities (0.5 is the decision threshold)
	// for the target test sequences, in order.
	Score(sc *Scenario) []float64
}

// Evaluate fits a method and scores it on the target test set, returning
// the paper's (P, R, F1) triple at threshold 0.5.
func Evaluate(m Method, sc *Scenario) metrics.Result {
	m.Fit(sc)
	scores := m.Score(sc)
	labels := make([]bool, len(sc.TargetTest.Samples))
	for i, s := range sc.TargetTest.Samples {
		labels[i] = s.Label
	}
	return metrics.Evaluate(scores, labels, 0.5)
}

// trainCfg bundles the shared supervised-training hyper-parameters used by
// the neural baselines at CPU scale.
type trainCfg struct {
	Epochs      int
	Batch       int
	LR          float64
	PosFraction float64
}

func defaultTrainCfg() trainCfg {
	return trainCfg{Epochs: 8, Batch: 64, LR: 3e-3, PosFraction: 0.35}
}

// encoderFn maps a [B,T,D] input node to a [B,H] representation.
type encoderFn func(g *nn.Graph, x *nn.Node, train bool) *nn.Node

// seqClassifier is a generic supervised sequence classifier: a pluggable
// encoder followed by a linear head, trained with BCE. NeuralLog,
// LogRobust and several transfer baselines instantiate it with their own
// encoders.
type seqClassifier struct {
	params *nn.ParamSet
	enc    encoderFn
	head   *nn.Linear
}

func newSeqClassifier(ps *nn.ParamSet, rng *rand.Rand, enc encoderFn, hidDim int) *seqClassifier {
	return &seqClassifier{params: ps, enc: enc, head: nn.NewLinear(ps, "head", rng, hidDim, 1)}
}

// logits builds the classification graph for a batch node.
func (c *seqClassifier) logits(g *nn.Graph, x *nn.Node, train bool) *nn.Node {
	return c.head.Forward(g, c.enc(g, x, train))
}

// fit trains the classifier on a dataset with balanced sampling.
func (c *seqClassifier) fit(d *repr.Dataset, cfg trainCfg, rng *rand.Rand, opt optim.Optimizer) {
	sampler := repr.NewBalancedSampler(d.Labels, cfg.PosFraction, rng)
	steps := d.Len() / cfg.Batch * cfg.Epochs
	if steps < cfg.Epochs {
		steps = cfg.Epochs
	}
	for s := 0; s < steps; s++ {
		idx := sampler.Sample(cfg.Batch)
		x, labels := d.Gather(idx)
		g := nn.NewGraph()
		loss := g.BCEWithLogits(c.logits(g, g.Const(x), true), labels)
		g.Backward(loss)
		c.params.ClipGradNorm(5)
		opt.Step()
	}
}

// score returns anomaly probabilities over a dataset.
func (c *seqClassifier) score(d *repr.Dataset) []float64 {
	out := make([]float64, 0, d.Len())
	const chunk = 256
	for start := 0; start < d.Len(); start += chunk {
		end := start + chunk
		if end > d.Len() {
			end = d.Len()
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, _ := d.Gather(idx)
		g := nn.NewGraph()
		logits := c.logits(g, g.Const(x), false)
		for _, z := range logits.Value.Data {
			out = append(out, sigmoid(z))
		}
	}
	return out
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
