package baselines

import (
	"math/rand"

	"logsynergy/internal/nn"
	"logsynergy/internal/nn/optim"
	"logsynergy/internal/repr"
	"logsynergy/internal/tensor"
)

// LogRobust (Zhang et al., ESEC/FSE 2019) classifies log sequences with an
// attention-based Bi-LSTM over semantic template vectors, built to tolerate
// unstable (evolving) log data. Supervised single-system; under the
// cross-system protocol it pools all labeled source + target samples.
type LogRobust struct {
	// Hidden is the per-direction LSTM width (paper: 2×128; CPU scale).
	Hidden int
	Train  trainCfg

	ps   *nn.ParamSet
	bi   *nn.BiLSTM
	attn *nn.Linear // scalar attention score per timestep
	clf  *seqClassifier
	opt  *optim.AdamW
}

// NewLogRobust returns the evaluation configuration.
func NewLogRobust() *LogRobust {
	return &LogRobust{Hidden: 24, Train: defaultTrainCfg()}
}

// Name implements Method.
func (l *LogRobust) Name() string { return "LogRobust" }

// Fit implements Method.
func (l *LogRobust) Fit(sc *Scenario) {
	rng := rand.New(rand.NewSource(sc.Seed + 19))
	l.ps = nn.NewParamSet()
	l.bi = nn.NewBiLSTM(l.ps, "logrobust.bilstm", rng, sc.Embedder.Dim, l.Hidden)
	l.attn = nn.NewLinear(l.ps, "logrobust.attn", rng, 2*l.Hidden, 1)
	enc := func(g *nn.Graph, x *nn.Node, train bool) *nn.Node {
		return l.attend(g, l.bi.Forward(g, x))
	}
	l.clf = newSeqClassifier(l.ps, rng, enc, 2*l.Hidden)
	l.opt = optim.NewAdamW(l.ps, l.Train.LR)

	parts := append(sc.RawSources(), sc.Raw(sc.TargetTrain))
	l.clf.fit(repr.Concat(parts...), l.Train, rng, l.opt)
}

// attend pools the BiLSTM outputs [B,T,2H] with learned softmax attention.
func (l *LogRobust) attend(g *nn.Graph, seq *nn.Node) *nn.Node {
	b, t, h := seq.Value.Dim(0), seq.Value.Dim(1), seq.Value.Dim(2)
	flat := g.Reshape(seq, b*t, h)
	scores := g.Reshape(l.attn.Forward(g, flat), b, 1, t) // [B,1,T]
	weights := g.SoftmaxLastDim(scores)
	ctx := g.BMM(weights, seq) // [B,1,2H]
	return g.Reshape(ctx, b, h)
}

// Score implements Method.
func (l *LogRobust) Score(sc *Scenario) []float64 {
	return l.clf.score(sc.Raw(sc.TargetTest))
}

// attentionWeights exposes the per-step attention for diagnostics/tests.
func (l *LogRobust) attentionWeights(x *tensor.Tensor) *tensor.Tensor {
	g := nn.NewGraph()
	seq := l.bi.Forward(g, g.Const(x))
	b, t, h := seq.Value.Dim(0), seq.Value.Dim(1), seq.Value.Dim(2)
	flat := g.Reshape(seq, b*t, h)
	scores := g.Reshape(l.attn.Forward(g, flat), b, 1, t)
	return g.SoftmaxLastDim(scores).Value
}
