package baselines

import (
	"testing"

	"logsynergy/internal/embed"
	"logsynergy/internal/logdata"
	"logsynergy/internal/window"
)

// testScenario builds a small BGL+Spirit → Thunderbird transfer scenario.
func testScenario(t *testing.T, srcLines, tgtLines, tgtTrain int) *Scenario {
	t.Helper()
	mk := func(spec *logdata.SystemSpec, lines int, seed int64) *logdata.Sequences {
		return logdata.Build(spec, seed, float64(lines)/float64(spec.Lines), window.Default())
	}
	tgt := mk(logdata.Thunderbird(), tgtLines, 3)
	train, test := tgt.SplitTrainTest(tgtTrain)
	return &Scenario{
		Sources:     []*logdata.Sequences{mk(logdata.BGL(), srcLines, 1), mk(logdata.Spirit(), srcLines, 2)},
		TargetTrain: train,
		TargetTest:  test,
		Embedder:    embed.New(32),
		Seed:        7,
	}
}

// checkScores validates the Method contract: one probability per test
// sequence, all within [0,1].
func checkScores(t *testing.T, m Method, sc *Scenario) []float64 {
	t.Helper()
	scores := m.Score(sc)
	if len(scores) != len(sc.TargetTest.Samples) {
		t.Fatalf("%s: %d scores for %d test sequences", m.Name(), len(scores), len(sc.TargetTest.Samples))
	}
	for i, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("%s: score[%d]=%v outside [0,1]", m.Name(), i, s)
		}
	}
	return scores
}

func TestAllMethodsRunAndScore(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	sc := testScenario(t, 4000, 6000, 300)
	methods := []Method{
		NewDeepLog(), NewLogAnomaly(), NewPLELog(), NewSpikeLog(),
		NewNeuralLog(), NewLogRobust(), NewPreLog(), NewLogTAD(),
		NewLogTransfer(), NewMetaLog(),
	}
	labels := make([]bool, len(sc.TargetTest.Samples))
	anomalies := 0
	for i, s := range sc.TargetTest.Samples {
		labels[i] = s.Label
		if s.Label {
			anomalies++
		}
	}
	if anomalies == 0 {
		t.Fatal("test scenario has no anomalies")
	}
	for _, m := range methods {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			res := Evaluate(m, sc)
			checkScores(t, m, sc)
			t.Logf("%s: %s", m.Name(), res)
		})
	}
}

func TestDeepLogFlagsUnseenEvents(t *testing.T) {
	sc := testScenario(t, 2000, 4000, 200)
	d := NewDeepLog()
	d.Fit(sc)
	// An out-of-vocabulary event id must make the sequence anomalous.
	huge := []int{999999, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	if !d.sequenceAnomalous(huge) {
		t.Fatal("unseen event must be flagged anomalous")
	}
}

func TestDeepLogHighRecall(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	sc := testScenario(t, 2000, 6000, 300)
	res := Evaluate(NewDeepLog(), sc)
	// The paper's shape: unsupervised target-only methods reach very high
	// recall (anomalous events never appear in normal training data) at
	// poor precision.
	if res.Recall < 0.9 {
		t.Errorf("DeepLog recall %.3f, want >= 0.9", res.Recall)
	}
	if res.Precision > 0.8 {
		t.Errorf("DeepLog precision %.3f unexpectedly high for the paper's shape", res.Precision)
	}
}

func TestLogAnomalyMatchesUnseenTemplates(t *testing.T) {
	sc := testScenario(t, 2000, 4000, 200)
	l := NewLogAnomaly()
	l.Fit(sc)
	if l.classes == 0 {
		t.Fatal("no vocabulary learned")
	}
	// A known id maps to itself.
	for id, cls := range l.vocab {
		got, ok := l.match(sc, id, sc.TargetTest.Templates)
		if !ok || got != cls {
			t.Fatalf("known id %d mapped to %d (ok=%v), want %d", id, got, ok, cls)
		}
		break
	}
}

func TestNormalOnlyFilter(t *testing.T) {
	sc := testScenario(t, 2000, 4000, 200)
	d := sc.Raw(sc.TargetTrain)
	n := normalOnly(d)
	for _, l := range n.Labels {
		if l {
			t.Fatal("normalOnly must strip anomalous rows")
		}
	}
	want := 0
	for _, l := range d.Labels {
		if !l {
			want++
		}
	}
	if n.Len() != want {
		t.Fatalf("normalOnly kept %d rows, want %d", n.Len(), want)
	}
}

func TestScenarioRawCaching(t *testing.T) {
	sc := testScenario(t, 2000, 4000, 200)
	a := sc.Raw(sc.TargetTrain)
	b := sc.Raw(sc.TargetTrain)
	if a != b {
		t.Fatal("Raw must cache per sequence set")
	}
}

func TestMethodNames(t *testing.T) {
	names := map[string]bool{}
	for _, m := range []Method{
		NewDeepLog(), NewLogAnomaly(), NewPLELog(), NewSpikeLog(),
		NewNeuralLog(), NewLogRobust(), NewPreLog(), NewLogTAD(),
		NewLogTransfer(), NewMetaLog(),
	} {
		if m.Name() == "" || names[m.Name()] {
			t.Fatalf("duplicate or empty method name %q", m.Name())
		}
		names[m.Name()] = true
	}
	direct := NewNeuralLog()
	direct.SourceOnly = true
	if direct.Name() != "NeuralLog (direct)" {
		t.Fatalf("direct NeuralLog name: %q", direct.Name())
	}
}
