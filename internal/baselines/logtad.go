package baselines

import (
	"math/rand"
	"sort"

	"logsynergy/internal/nn"
	"logsynergy/internal/nn/optim"
	"logsynergy/internal/repr"
	"logsynergy/internal/tensor"
)

// LogTAD (Han & Yuan, CIKM 2021) is unsupervised cross-system detection
// via domain adaptation: an LSTM encoder maps *normal* sequences from both
// the source and target systems close to a shared center vector (Deep
// SVDD-style), while a domain discriminator trained through a GRL makes
// the representations domain-invariant. At test time the anomaly score is
// the distance to the center; the threshold derives from the training
// distance distribution.
type LogTAD struct {
	// Hidden is the LSTM width (paper: 2×128; CPU scale).
	Hidden int
	// Quantile sets the detection threshold on normal-train distances.
	Quantile float64
	// GRLLambda weights the adversarial domain loss.
	GRLLambda float64
	Train     trainCfg

	ps        *nn.ParamSet
	lstm      *nn.LSTM
	domainClf *nn.MLP
	center    *tensor.Tensor
	threshold float64
	rng       *rand.Rand
}

// NewLogTAD returns the evaluation configuration.
func NewLogTAD() *LogTAD {
	return &LogTAD{Hidden: 32, Quantile: 0.95, GRLLambda: 1, Train: defaultTrainCfg()}
}

// Name implements Method.
func (l *LogTAD) Name() string { return "LogTAD" }

// Fit implements Method: train on normal sequences from the sources and
// the target slice (its unsupervised regime uses all normal samples).
func (l *LogTAD) Fit(sc *Scenario) {
	l.rng = rand.New(rand.NewSource(sc.Seed + 37))
	dim := sc.Embedder.Dim

	// Collect normal-only rows from every domain; domain label 1 = target.
	type part struct {
		d      *repr.Dataset
		domain float64
	}
	var parts []part
	for _, s := range sc.RawSources() {
		parts = append(parts, part{normalOnly(s), 0})
	}
	parts = append(parts, part{normalOnly(sc.Raw(sc.TargetTrain)), 1})

	l.ps = nn.NewParamSet()
	l.lstm = nn.NewLSTM(l.ps, "logtad.lstm", l.rng, dim, l.Hidden)
	l.domainClf = nn.NewMLP(l.ps, "logtad.domain", l.rng, l.Hidden, l.Hidden, 1)
	opt := optim.NewAdamW(l.ps, l.Train.LR)

	// Initialize the shared center as the mean initial representation of a
	// normal sample batch (Deep SVDD convention).
	l.center = l.initCenter(parts[0].d)

	batch := l.Train.Batch
	perDomain := maxInt(batch/len(parts), 1)
	steps := 0
	for _, p := range parts {
		steps += p.d.Len()
	}
	steps = maxInt(steps/batch, 1) * l.Train.Epochs

	for s := 0; s < steps; s++ {
		g := nn.NewGraph()
		var loss *nn.Node
		for _, p := range parts {
			if p.d.Len() == 0 {
				continue
			}
			idx := randomIndices(l.rng, p.d.Len(), perDomain)
			x, _ := p.d.Gather(idx)
			_, last := l.lstm.Forward(g, g.Const(x))
			// Pull representations toward the center.
			centerBatch := repeatRow(l.center, perDomain)
			dist := g.MSE(last, centerBatch)
			// Adversarial domain loss through the GRL.
			domLabels := make([]float64, perDomain)
			for i := range domLabels {
				domLabels[i] = p.domain
			}
			dom := g.BCEWithLogits(l.domainClf.Forward(g, g.GRL(last, l.GRLLambda)), domLabels)
			term := g.Add(dist, g.Scale(dom, 0.1))
			if loss == nil {
				loss = term
			} else {
				loss = g.Add(loss, term)
			}
		}
		g.Backward(loss)
		l.ps.ClipGradNorm(5)
		opt.Step()
	}

	// Threshold: quantile of normal-train distances on the target domain.
	tgt := parts[len(parts)-1].d
	if tgt.Len() == 0 {
		tgt = parts[0].d
	}
	dists := l.distances(tgt)
	sort.Float64s(dists)
	l.threshold = dists[int(float64(len(dists)-1)*l.Quantile)]
	if l.threshold == 0 {
		l.threshold = 1e-9
	}
}

// initCenter embeds the first up-to-256 rows and averages them.
func (l *LogTAD) initCenter(d *repr.Dataset) *tensor.Tensor {
	n := d.Len()
	if n > 256 {
		n = 256
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	x, _ := d.Gather(idx)
	g := nn.NewGraph()
	_, last := l.lstm.Forward(g, g.Const(x))
	c := tensor.New(l.Hidden)
	for i := 0; i < n; i++ {
		for j := 0; j < l.Hidden; j++ {
			c.Data[j] += last.Value.Data[i*l.Hidden+j]
		}
	}
	for j := range c.Data {
		c.Data[j] /= float64(n)
	}
	return c
}

// distances returns per-row squared distances to the center.
func (l *LogTAD) distances(d *repr.Dataset) []float64 {
	out := make([]float64, 0, d.Len())
	const chunk = 256
	for start := 0; start < d.Len(); start += chunk {
		end := start + chunk
		if end > d.Len() {
			end = d.Len()
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, _ := d.Gather(idx)
		g := nn.NewGraph()
		_, last := l.lstm.Forward(g, g.Const(x))
		for i := 0; i < end-start; i++ {
			sum := 0.0
			for j := 0; j < l.Hidden; j++ {
				diff := last.Value.Data[i*l.Hidden+j] - l.center.Data[j]
				sum += diff * diff
			}
			out = append(out, sum)
		}
	}
	return out
}

// Score implements Method: distance mapped so the 0.5 threshold coincides
// with the learned distance threshold (score = d / (2·threshold), capped).
func (l *LogTAD) Score(sc *Scenario) []float64 {
	test := sc.Raw(sc.TargetTest)
	dists := l.distances(test)
	out := make([]float64, len(dists))
	for i, d := range dists {
		s := d / (2 * l.threshold)
		if s > 1 {
			s = 1
		}
		out[i] = s
	}
	return out
}

// normalOnly filters a dataset to its normal rows.
func normalOnly(d *repr.Dataset) *repr.Dataset {
	var idx []int
	for i, l := range d.Labels {
		if !l {
			idx = append(idx, i)
		}
	}
	x, _ := d.Gather(idx)
	return &repr.Dataset{System: d.System, X: x, Labels: make([]bool, len(idx)),
		Table: d.Table, SeqLen: d.SeqLen}
}

// repeatRow tiles a vector into a constant [n, len(v)] tensor.
func repeatRow(v *tensor.Tensor, n int) *tensor.Tensor {
	dim := v.Size()
	out := tensor.New(n, dim)
	for i := 0; i < n; i++ {
		copy(out.Data[i*dim:(i+1)*dim], v.Data)
	}
	return out
}
