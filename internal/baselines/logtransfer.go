package baselines

import (
	"math/rand"

	"logsynergy/internal/nn"
	"logsynergy/internal/nn/optim"
	"logsynergy/internal/repr"
)

// LogTransfer (Chen et al., ISSRE 2020) is supervised cross-system
// transfer: an LSTM network is trained on the labeled source system, then
// the shared LSTM layers are frozen and only the fully connected
// classification layers are fine-tuned on the target system's labeled
// slice. Word-level GloVe vectors provide the input representation in the
// original; the shared raw embedder plays that role here.
type LogTransfer struct {
	// Hidden is the LSTM width (paper: 2×128; CPU scale).
	Hidden int
	Train  trainCfg

	sharedPS *nn.ParamSet // LSTM: trained on source, then frozen
	headPS   *nn.ParamSet // fully connected layers: fine-tuned on target
	lstm     *nn.LSTM
	fc       *nn.MLP
	rng      *rand.Rand
}

// NewLogTransfer returns the evaluation configuration.
func NewLogTransfer() *LogTransfer {
	return &LogTransfer{Hidden: 32, Train: defaultTrainCfg()}
}

// Name implements Method.
func (l *LogTransfer) Name() string { return "LogTransfer" }

// Fit implements Method.
func (l *LogTransfer) Fit(sc *Scenario) {
	l.rng = rand.New(rand.NewSource(sc.Seed + 41))
	dim := sc.Embedder.Dim

	l.sharedPS = nn.NewParamSet()
	l.headPS = nn.NewParamSet()
	l.lstm = nn.NewLSTM(l.sharedPS, "logtransfer.lstm", l.rng, dim, l.Hidden)
	l.fc = nn.NewMLP(l.headPS, "logtransfer.fc", l.rng, l.Hidden, l.Hidden, 1)

	// Stage 1: source training updates both the shared LSTM and the head.
	source := repr.Concat(sc.RawSources()...)
	all := nn.NewParamSet()
	all.Merge(l.sharedPS)
	all.Merge(l.headPS)
	l.trainOn(source, all)

	// Stage 2: transfer — freeze the shared network, fine-tune the fully
	// connected layers on the target's labeled slice.
	l.trainOn(sc.Raw(sc.TargetTrain), l.headPS)
}

// trainOn runs balanced supervised training, updating only the params in
// trainable (gradients accumulate everywhere but only trainable steps).
func (l *LogTransfer) trainOn(d *repr.Dataset, trainable *nn.ParamSet) {
	if d.Len() == 0 {
		return
	}
	opt := optim.NewAdamW(trainable, l.Train.LR)
	sampler := repr.NewBalancedSampler(d.Labels, l.Train.PosFraction, l.rng)
	steps := maxInt(d.Len()/l.Train.Batch, 1) * l.Train.Epochs
	for s := 0; s < steps; s++ {
		idx := sampler.Sample(l.Train.Batch)
		x, labels := d.Gather(idx)
		g := nn.NewGraph()
		_, last := l.lstm.Forward(g, g.Const(x))
		loss := g.BCEWithLogits(l.fc.Forward(g, last), labels)
		g.Backward(loss)
		trainable.ClipGradNorm(5)
		opt.Step()
		// Discard gradients of frozen parameters.
		l.sharedPS.ZeroGrad()
		l.headPS.ZeroGrad()
	}
}

// Score implements Method.
func (l *LogTransfer) Score(sc *Scenario) []float64 {
	test := sc.Raw(sc.TargetTest)
	out := make([]float64, 0, test.Len())
	const chunk = 256
	for start := 0; start < test.Len(); start += chunk {
		end := start + chunk
		if end > test.Len() {
			end = test.Len()
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, _ := test.Gather(idx)
		g := nn.NewGraph()
		_, last := l.lstm.Forward(g, g.Const(x))
		logits := l.fc.Forward(g, last)
		for _, z := range logits.Value.Data {
			out = append(out, sigmoid(z))
		}
	}
	return out
}
