package baselines

import (
	"math"
	"math/rand"
	"sort"

	"logsynergy/internal/embed"
	"logsynergy/internal/nn"
	"logsynergy/internal/nn/optim"
	"logsynergy/internal/repr"
)

// PLELog (Yang et al., ICSE 2021) is semi-supervised and target-only: it
// knows a portion of the normal sequences (50% in the paper's protocol)
// and estimates probabilistic labels for the remaining unlabeled ones by
// clustering in semantic space, then trains a GRU classifier on the
// estimated labels. The original clusters with HDBSCAN; this
// implementation pseudo-labels by per-event novelty against the labeled
// normal event population, which preserves the method's behaviour:
// unlabeled sequences containing events far from known-normal structure
// get anomalous pseudo-labels.
type PLELog struct {
	// LabeledNormalFraction is how much of the normal training data is
	// revealed as labeled (paper protocol: 0.5).
	LabeledNormalFraction float64
	// PseudoAnomalyQuantile marks the farthest unlabeled sequences as
	// anomalous during label estimation.
	PseudoAnomalyQuantile float64
	// Hidden is the GRU width (paper: 100; CPU scale).
	Hidden int
	Train  trainCfg

	ps  *nn.ParamSet
	gru *nn.GRU
	clf *seqClassifier
}

// NewPLELog returns the evaluation configuration.
func NewPLELog() *PLELog {
	return &PLELog{
		LabeledNormalFraction: 0.5,
		PseudoAnomalyQuantile: 0.95,
		Hidden:                32,
		Train:                 defaultTrainCfg(),
	}
}

// Name implements Method.
func (p *PLELog) Name() string { return "PLELog" }

// Fit implements Method.
func (p *PLELog) Fit(sc *Scenario) {
	rng := rand.New(rand.NewSource(sc.Seed + 23))
	target := sc.Raw(sc.TargetTrain)

	// Split: half the normals are revealed as labeled; every other sample
	// (remaining normals + all anomalies) is unlabeled.
	var labeledNormal, unlabeled []int
	for i, l := range target.Labels {
		if !l && rng.Float64() < p.LabeledNormalFraction {
			labeledNormal = append(labeledNormal, i)
		} else {
			unlabeled = append(unlabeled, i)
		}
	}

	pseudo := p.estimateLabels(target, labeledNormal, unlabeled)

	p.ps = nn.NewParamSet()
	p.gru = nn.NewGRU(p.ps, "plelog.gru", rng, sc.Embedder.Dim, p.Hidden)
	enc := func(g *nn.Graph, x *nn.Node, train bool) *nn.Node {
		_, last := p.gru.Forward(g, x)
		return last
	}
	p.clf = newSeqClassifier(p.ps, rng, enc, p.Hidden)
	opt := optim.NewAdamW(p.ps, p.Train.LR)

	// Train on pseudo-labeled data.
	pseudoDataset := &repr.Dataset{
		System: target.System,
		X:      target.X,
		Labels: pseudo,
		Table:  target.Table,
		SeqLen: target.SeqLen,
	}
	p.clf.fit(pseudoDataset, p.Train, rng, opt)
}

// estimateLabels assigns pseudo-labels. Known normals stay normal; an
// unlabeled sequence's anomaly evidence is its most *novel* event — the
// maximum over its events of the distance to the nearest event observed in
// labeled-normal sequences (clustering sequences by their mean embedding
// would dilute a single anomalous event 10× and miss it). Sequences beyond
// the novelty quantile become pseudo-anomalies.
func (p *PLELog) estimateLabels(d *repr.Dataset, labeledNormal, unlabeled []int) []bool {
	normalEvents := collectEventVectors(d, labeledNormal)
	novelty := make([]float64, len(unlabeled))
	for i, j := range unlabeled {
		novelty[i] = maxEventNovelty(d, j, normalEvents)
	}
	sorted := append([]float64(nil), novelty...)
	sort.Float64s(sorted)
	cut := 1.0
	if len(sorted) > 0 {
		cut = sorted[int(float64(len(sorted)-1)*p.PseudoAnomalyQuantile)]
	}
	pseudo := make([]bool, d.Len())
	for i, j := range unlabeled {
		if novelty[i] >= cut && novelty[i] > 0 {
			pseudo[j] = true
		}
	}
	return pseudo
}

// collectEventVectors gathers the distinct event vectors of selected rows.
func collectEventVectors(d *repr.Dataset, rows []int) [][]float64 {
	t, dim := d.SeqLen, d.Dim()
	seen := make(map[string]bool)
	var out [][]float64
	for _, r := range rows {
		for s := 0; s < t; s++ {
			v := d.X.Data[(r*t+s)*dim : (r*t+s+1)*dim]
			key := vecKey(v)
			if !seen[key] {
				seen[key] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// vecKey is an exact-identity key for an event vector (vectors are copies
// of event-table rows, so bitwise equality identifies the event).
func vecKey(v []float64) string {
	b := make([]byte, len(v)*8)
	for i, x := range v {
		bits := math.Float64bits(x)
		for k := 0; k < 8; k++ {
			b[i*8+k] = byte(bits >> (8 * k))
		}
	}
	return string(b)
}

// maxEventNovelty is the largest per-event distance to the nearest known
// normal event vector.
func maxEventNovelty(d *repr.Dataset, row int, normalEvents [][]float64) float64 {
	t, dim := d.SeqLen, d.Dim()
	worst := 0.0
	for s := 0; s < t; s++ {
		v := d.X.Data[(row*t+s)*dim : (row*t+s+1)*dim]
		best := 1.0
		for _, nv := range normalEvents {
			dist := 1 - embed.Cosine(v, nv)
			if dist < best {
				best = dist
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}

// Score implements Method.
func (p *PLELog) Score(sc *Scenario) []float64 {
	return p.clf.score(sc.Raw(sc.TargetTest))
}
