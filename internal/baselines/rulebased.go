package baselines

import "strings"

// RuleBased models the incumbent practice the paper's deployment replaced
// (§VI-C): operators accumulate keyword rules from anomalies they have
// already seen. Rules fire with high precision but can only detect
// *predefined* anomalies, so recall on a new system stays low until
// enough incidents have been analyzed — the paper reports 1–2 weeks of
// engineering per rule.
//
// The simulation derives rules from the anomalous sequences in the target
// training slice: each anomalous template contributes its distinctive
// keywords. Anything matching a rule is flagged; everything else passes.
type RuleBased struct {
	// MinKeywordLen filters trivial tokens out of learned rules.
	MinKeywordLen int

	rules []string
}

// NewRuleBased returns the §VI-C reference configuration.
func NewRuleBased() *RuleBased { return &RuleBased{MinKeywordLen: 6} }

// Name implements Method.
func (r *RuleBased) Name() string { return "Rule-based" }

// Fit implements Method: accumulate rules from observed target anomalies.
// (Operators cannot see the source systems' incidents — rules are written
// per system, which is exactly why the approach scales poorly.)
func (r *RuleBased) Fit(sc *Scenario) {
	// An operator writing a rule picks strings that never occur in normal
	// traffic; model that with the normal-template vocabulary as a
	// blocklist.
	normalIDs := make(map[int]bool)
	for _, s := range sc.TargetTrain.Samples {
		if !s.Label {
			for _, id := range s.EventIDs {
				normalIDs[id] = true
			}
		}
	}
	normalVocab := make(map[string]bool)
	for id := range normalIDs {
		for _, tok := range ruleTokens(sc.TargetTrain.Templates[id], r.MinKeywordLen) {
			normalVocab[tok] = true
		}
	}

	seen := make(map[string]bool)
	for _, s := range sc.TargetTrain.Samples {
		if !s.Label {
			continue
		}
		for _, id := range s.EventIDs {
			if normalIDs[id] {
				continue
			}
			for _, kw := range ruleTokens(sc.TargetTrain.Templates[id], r.MinKeywordLen) {
				if !normalVocab[kw] && !seen[kw] {
					seen[kw] = true
					r.rules = append(r.rules, kw)
				}
			}
		}
	}
}

// ruleTokens extracts candidate rule tokens from a template.
func ruleTokens(template string, minLen int) []string {
	var out []string
	for _, tok := range strings.Fields(strings.ToLower(template)) {
		tok = strings.Trim(tok, ".,:;()[]{}\"'=<>*")
		if len(tok) >= minLen && !strings.ContainsAny(tok, "0123456789") {
			out = append(out, tok)
		}
	}
	return out
}

// NumRules reports the accumulated rule count (the §VI-C effort metric).
func (r *RuleBased) NumRules() int { return len(r.rules) }

// Score implements Method: a sequence scores 1 iff any of its templates
// matches a rule.
func (r *RuleBased) Score(sc *Scenario) []float64 {
	out := make([]float64, len(sc.TargetTest.Samples))
	for i, s := range sc.TargetTest.Samples {
		for _, id := range s.EventIDs {
			if r.matches(sc.TargetTest.Templates[id]) {
				out[i] = 1
				break
			}
		}
	}
	return out
}

func (r *RuleBased) matches(template string) bool {
	lowered := strings.ToLower(template)
	for _, rule := range r.rules {
		if strings.Contains(lowered, rule) {
			return true
		}
	}
	return false
}
