package baselines

import (
	"testing"
)

// These tests pin per-method behaviours that the paper's analysis relies
// on, beyond the generic contract of baselines_test.go.

func TestLogTADThresholdFromNormals(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	sc := testScenario(t, 1500, 4000, 250)
	l := NewLogTAD()
	l.Fit(sc)
	if l.threshold <= 0 {
		t.Fatalf("threshold must be positive, got %v", l.threshold)
	}
	// Scores are calibrated so 0.5 corresponds to the learned threshold.
	scores := l.Score(sc)
	above := 0
	for _, s := range scores {
		if s > 0.5 {
			above++
		}
	}
	if above == 0 {
		t.Fatal("some test sequences should exceed the distance threshold")
	}
	if above == len(scores) {
		t.Fatal("not every sequence can be anomalous")
	}
}

func TestLogTransferFreezesSharedLayers(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	sc := testScenario(t, 1000, 3000, 200)
	l := NewLogTransfer()
	l.Train.Epochs = 2
	l.Fit(sc)

	// Snapshot LSTM weights, fine-tune again on target: they must not move.
	before := l.sharedPS.Get("logtransfer.lstm.wx").Value.Clone()
	l.trainOn(sc.Raw(sc.TargetTrain), l.headPS)
	after := l.sharedPS.Get("logtransfer.lstm.wx").Value
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("shared LSTM must stay frozen during target fine-tuning")
		}
	}
}

func TestMetaLogAdaptationChangesParams(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	sc := testScenario(t, 1000, 3000, 200)
	m := NewMetaLog()
	m.MetaIterations = 5
	m.Train.Epochs = 1
	m.Fit(sc)
	if m.ps.NumParams() == 0 {
		t.Fatal("no parameters created")
	}
}

func TestPreLogHeadOnlyTuning(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	sc := testScenario(t, 1000, 3000, 200)
	p := NewPreLog()
	p.PreEpochs = 1
	p.Train.Epochs = 1
	p.Fit(sc)
	// Prompt tuning must not touch the pre-trained encoder: its params
	// and the head's live in disjoint sets.
	for _, param := range p.hps.All() {
		if p.ps.Get(param.Name) != nil {
			t.Fatal("head parameters must be disjoint from encoder parameters")
		}
	}
}

func TestSpikeLogLIFRange(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	sc := testScenario(t, 1000, 3000, 200)
	s := NewSpikeLog()
	s.Train.Epochs = 1
	s.Fit(sc)
	scores := s.Score(sc)
	for _, v := range scores {
		if v < 0 || v > 1 {
			t.Fatalf("score %v outside [0,1]", v)
		}
	}
}

func TestPLELogPseudoLabelsMarkNovelEvents(t *testing.T) {
	sc := testScenario(t, 1000, 4000, 300)
	p := NewPLELog()
	target := sc.Raw(sc.TargetTrain)
	var labeledNormal, unlabeled []int
	for i, l := range target.Labels {
		if !l && i%2 == 0 {
			labeledNormal = append(labeledNormal, i)
		} else {
			unlabeled = append(unlabeled, i)
		}
	}
	pseudo := p.estimateLabels(target, labeledNormal, unlabeled)
	// True anomalies among the unlabeled should be pseudo-labeled
	// anomalous more often than true normals.
	var anomRate, normRate float64
	var anomN, normN int
	for _, j := range unlabeled {
		if target.Labels[j] {
			anomN++
			if pseudo[j] {
				anomRate++
			}
		} else {
			normN++
			if pseudo[j] {
				normRate++
			}
		}
	}
	if anomN == 0 {
		t.Skip("no anomalies in this slice")
	}
	anomRate /= float64(anomN)
	normRate /= float64(normN)
	if anomRate <= normRate {
		t.Fatalf("pseudo-labels must enrich true anomalies: anom %.2f vs norm %.2f", anomRate, normRate)
	}
}

func TestRuleBasedHighPrecisionLowRecall(t *testing.T) {
	if testing.Short() {
		t.Skip("data-building test")
	}
	sc := testScenario(t, 1000, 6000, 300)
	r := NewRuleBased()
	res := Evaluate(r, sc)
	t.Logf("rule-based: %s (%d rules)", res, r.NumRules())
	if r.NumRules() == 0 {
		t.Skip("no anomalies in this training slice to derive rules from")
	}
	// §VI-C shape: predefined-anomaly detection — precise but incomplete.
	if res.Recall >= 0.95 {
		t.Errorf("rule-based recall %.2f should be limited to seen anomaly kinds", res.Recall)
	}
	if res.Precision < 0.5 && res.Recall > 0 {
		t.Errorf("rule-based precision %.2f should be high on matched rules", res.Precision)
	}
}
