package baselines

import (
	"math/rand"

	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/nn"
	"logsynergy/internal/nn/optim"
	"logsynergy/internal/tensor"
)

// LogAnomaly (Meng et al., IJCAI 2019) extends DeepLog with template2vec
// semantics and a quantitative (count-vector) channel. Like DeepLog it is
// unsupervised and target-only, but unseen test templates are matched to
// the nearest known template in embedding space instead of being flagged
// outright, and the next-event predictor reads semantic vectors rather
// than one-hot ids.
type LogAnomaly struct {
	// History, TopK, Hidden, Epochs, LR as in DeepLog (paper setup:
	// 2 LSTM layers, 128 hidden, top-9; CPU scale reduces the width).
	History int
	TopK    int
	Hidden  int
	Epochs  int
	LR      float64
	// MatchThreshold is the minimum cosine similarity for template
	// matching; below it an unseen template still counts as anomalous.
	MatchThreshold float64

	vocab     map[int]int
	classes   int
	vectors   *tensor.Tensor // [classes, dim] template2vec table
	dim       int
	ps        *nn.ParamSet
	lstm      *nn.LSTM
	out       *nn.Linear
	countProj *nn.Linear
	rng       *rand.Rand
}

// NewLogAnomaly returns the evaluation configuration.
func NewLogAnomaly() *LogAnomaly {
	return &LogAnomaly{History: 5, TopK: 9, Hidden: 32, Epochs: 10, LR: 3e-3, MatchThreshold: 0.55}
}

// Name implements Method.
func (l *LogAnomaly) Name() string { return "LogAnomaly" }

// Fit implements Method.
func (l *LogAnomaly) Fit(sc *Scenario) {
	l.rng = rand.New(rand.NewSource(sc.Seed + 13))
	l.dim = sc.Embedder.Dim
	train := sc.TargetTrain

	// Vocabulary and template2vec table from normal training sequences.
	l.vocab = make(map[int]int)
	for _, s := range train.Samples {
		if s.Label {
			continue
		}
		for _, id := range s.EventIDs {
			if _, ok := l.vocab[id]; !ok {
				l.vocab[id] = len(l.vocab)
			}
		}
	}
	l.classes = len(l.vocab)
	if l.classes == 0 {
		return
	}
	l.vectors = tensor.New(l.classes, l.dim)
	for id, cls := range l.vocab {
		v := sc.Embedder.Embed(lei.Identity{}.Interpret("", train.Templates[id]).Text)
		copy(l.vectors.Data[cls*l.dim:(cls+1)*l.dim], v)
	}

	l.ps = nn.NewParamSet()
	// Input per step: semantic vector ++ normalized count vector summary.
	l.lstm = nn.NewLSTM(l.ps, "loganomaly.lstm", l.rng, l.dim, l.Hidden)
	l.countProj = nn.NewLinear(l.ps, "loganomaly.count", l.rng, l.classes, l.Hidden)
	l.out = nn.NewLinear(l.ps, "loganomaly.out", l.rng, 2*l.Hidden, l.classes)
	opt := optim.NewAdamW(l.ps, l.LR)

	var histories [][]int
	var nexts []int
	for _, s := range train.Samples {
		if s.Label {
			continue
		}
		for t := l.History; t < len(s.EventIDs); t++ {
			h := make([]int, l.History)
			for i := range h {
				h[i] = l.vocab[s.EventIDs[t-l.History+i]]
			}
			histories = append(histories, h)
			nexts = append(nexts, l.vocab[s.EventIDs[t]])
		}
	}
	if len(histories) == 0 {
		return
	}
	batch := 64
	for epoch := 0; epoch < l.Epochs; epoch++ {
		perm := l.rng.Perm(len(histories))
		for start := 0; start < len(perm); start += batch {
			end := start + batch
			if end > len(perm) {
				end = len(perm)
			}
			idx := perm[start:end]
			batchHist := make([][]int, len(idx))
			labels := make([]int, len(idx))
			for i, j := range idx {
				batchHist[i] = histories[j]
				labels[i] = nexts[j]
			}
			x, counts := l.encode(batchHist)
			g := nn.NewGraph()
			_, seqLast := l.lstm.Forward(g, g.Const(x))
			quant := g.ReLU(l.countProj.Forward(g, g.Const(counts)))
			joint := g.ConcatCols(seqLast, quant)
			loss := g.CrossEntropyLogits(l.out.Forward(g, joint), labels)
			g.Backward(loss)
			l.ps.ClipGradNorm(5)
			opt.Step()
		}
	}
}

// encode builds the semantic input tensor [B,H,dim] and the count-vector
// matrix [B,classes] for a batch of class-index histories.
func (l *LogAnomaly) encode(histories [][]int) (x, counts *tensor.Tensor) {
	x = tensor.New(len(histories), l.History, l.dim)
	counts = tensor.New(len(histories), l.classes)
	for i, h := range histories {
		for t, cls := range h {
			copy(x.Data[(i*l.History+t)*l.dim:(i*l.History+t+1)*l.dim],
				l.vectors.Data[cls*l.dim:(cls+1)*l.dim])
			counts.Data[i*l.classes+cls] += 1.0 / float64(l.History)
		}
	}
	return x, counts
}

// match maps a target event id to the nearest known class via template2vec
// similarity; ok is false when nothing is similar enough.
func (l *LogAnomaly) match(sc *Scenario, id int, templates []string) (int, bool) {
	if cls, ok := l.vocab[id]; ok {
		return cls, true
	}
	v := sc.Embedder.Embed(templates[id])
	bestCls, bestSim := -1, -1.0
	for cls := 0; cls < l.classes; cls++ {
		sim := embed.Cosine(v, l.vectors.Data[cls*l.dim:(cls+1)*l.dim])
		if sim > bestSim {
			bestCls, bestSim = cls, sim
		}
	}
	if bestSim < l.MatchThreshold {
		return -1, false
	}
	return bestCls, true
}

// Score implements Method.
func (l *LogAnomaly) Score(sc *Scenario) []float64 {
	test := sc.TargetTest
	out := make([]float64, len(test.Samples))
	for i, s := range test.Samples {
		if l.sequenceAnomalous(sc, s.EventIDs, test.Templates) {
			out[i] = 1
		}
	}
	return out
}

func (l *LogAnomaly) sequenceAnomalous(sc *Scenario, eventIDs []int, templates []string) bool {
	if l.classes == 0 {
		return true
	}
	mapped := make([]int, len(eventIDs))
	for i, id := range eventIDs {
		cls, ok := l.match(sc, id, templates)
		if !ok {
			return true
		}
		mapped[i] = cls
	}
	for t := l.History; t < len(mapped); t++ {
		if !l.inTopK(mapped[t-l.History:t], mapped[t]) {
			return true
		}
	}
	return false
}

func (l *LogAnomaly) inTopK(hist []int, actual int) bool {
	if l.TopK >= l.classes {
		return true
	}
	x, counts := l.encode([][]int{hist})
	g := nn.NewGraph()
	_, last := l.lstm.Forward(g, g.Const(x))
	quant := g.ReLU(l.countProj.Forward(g, g.Const(counts)))
	logits := l.out.Forward(g, g.ConcatCols(last, quant)).Value
	target := logits.Data[actual]
	higher := 0
	for _, z := range logits.Data {
		if z > target {
			higher++
		}
	}
	return higher < l.TopK
}
