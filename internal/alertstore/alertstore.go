// Package alertstore provides durable storage for anomaly reports: an
// append-only JSONL log with an in-memory index, crash-tolerant reopen,
// time-range and system queries, and compaction. The production workflow
// (§VI) routes every alert to operators; a deployment also needs the
// alert history on disk for audits, post-mortems and the §VI-C
// false-positive/false-negative analysis — this package is that history.
package alertstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"logsynergy/internal/core"
)

// Record is one stored alert.
type Record struct {
	// ID is the store-assigned sequence number (1-based, append order).
	ID uint64 `json:"id"`
	// Report is the alert payload.
	Report core.Report `json:"report"`
	// StoredAt is when the record was appended.
	StoredAt time.Time `json:"stored_at"`
	// Acknowledged marks alerts an operator has handled.
	Acknowledged bool `json:"acknowledged,omitempty"`
}

// Store is an append-only alert log. It is safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	path    string
	file    *os.File
	w       *bufio.Writer
	records []Record // in-memory index, append order
	nextID  uint64
	// Sync forces an fsync after every append (durability over speed).
	Sync bool
}

// Open opens (or creates) a store at path, replaying existing records. A
// truncated or corrupt trailing line — the signature of a crash mid-write
// — is dropped; everything before it is recovered.
func Open(path string) (*Store, error) {
	s := &Store{path: path, nextID: 1}
	if err := s.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("alertstore: opening %s: %w", path, err)
	}
	s.file = f
	s.w = bufio.NewWriter(f)
	return s, nil
}

// replay loads existing records into the index.
func (s *Store) replay() error {
	f, err := os.Open(s.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("alertstore: replaying %s: %w", s.path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	index := make(map[uint64]int)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			// Corrupt (likely torn) record: stop replay here. Everything
			// already loaded is intact; the writer will append after the
			// damaged tail, which queries never see.
			break
		}
		// Later versions of a record (e.g. acknowledgements) supersede
		// earlier ones in place, keeping first-seen order.
		if i, ok := index[r.ID]; ok {
			s.records[i] = r
		} else {
			index[r.ID] = len(s.records)
			s.records = append(s.records, r)
		}
		if r.ID >= s.nextID {
			s.nextID = r.ID + 1
		}
	}
	return sc.Err()
}

// Append stores one report and returns its record.
func (s *Store) Append(rep *core.Report) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := Record{ID: s.nextID, Report: *rep, StoredAt: time.Now().UTC()}
	line, err := json.Marshal(rec)
	if err != nil {
		return Record{}, fmt.Errorf("alertstore: encoding record: %w", err)
	}
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		return Record{}, fmt.Errorf("alertstore: appending: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return Record{}, fmt.Errorf("alertstore: flushing: %w", err)
	}
	if s.Sync {
		if err := s.file.Sync(); err != nil {
			return Record{}, fmt.Errorf("alertstore: syncing: %w", err)
		}
	}
	s.nextID++
	s.records = append(s.records, rec)
	return rec, nil
}

// Close flushes and closes the underlying file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	err := s.file.Close()
	s.file = nil
	return err
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Query selects records matching the filter, in append order.
type Query struct {
	// System filters by monitored system name ("" = all).
	System string
	// From and To bound the report timestamp (zero = unbounded).
	From, To time.Time
	// MinScore keeps only reports at or above the score.
	MinScore float64
	// UnacknowledgedOnly keeps only open alerts.
	UnacknowledgedOnly bool
	// Limit caps the result count (0 = unlimited).
	Limit int
}

// matches reports whether a record satisfies the query.
func (q Query) matches(r Record) bool {
	if q.System != "" && r.Report.System != q.System {
		return false
	}
	if !q.From.IsZero() && r.Report.Timestamp.Before(q.From) {
		return false
	}
	if !q.To.IsZero() && r.Report.Timestamp.After(q.To) {
		return false
	}
	if r.Report.Score < q.MinScore {
		return false
	}
	if q.UnacknowledgedOnly && r.Acknowledged {
		return false
	}
	return true
}

// Find returns matching records.
func (s *Store) Find(q Query) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, r := range s.records {
		if q.matches(r) {
			out = append(out, r)
			if q.Limit > 0 && len(out) >= q.Limit {
				break
			}
		}
	}
	return out
}

// Acknowledge marks a record handled. The flag is persisted as a new
// version of the record appended to the log (last version wins on replay
// ... simplest possible MVCC). Returns false if the id is unknown.
func (s *Store) Acknowledge(id uint64) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.records {
		if s.records[i].ID == id {
			s.records[i].Acknowledged = true
			line, err := json.Marshal(s.records[i])
			if err != nil {
				return false, err
			}
			if _, err := s.w.Write(append(line, '\n')); err != nil {
				return false, err
			}
			return true, s.w.Flush()
		}
	}
	return false, nil
}

// Compact rewrites the log keeping only records matching keep (nil keeps
// everything, deduplicating superseded record versions). The store stays
// usable afterwards.
func (s *Store) Compact(keep func(Record) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Deduplicate by id (last version wins), preserving append order.
	last := make(map[uint64]int, len(s.records))
	for i, r := range s.records {
		last[r.ID] = i
	}
	var kept []Record
	for i, r := range s.records {
		if last[r.ID] != i {
			continue
		}
		if keep == nil || keep(r) {
			kept = append(kept, r)
		}
	}

	tmp := s.path + ".compact"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("alertstore: compacting: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, r := range kept {
		line, err := json.Marshal(r)
		if err != nil {
			f.Close()
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.file.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("alertstore: swapping compacted log: %w", err)
	}
	nf, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.file = nf
	s.w = bufio.NewWriter(nf)
	s.records = kept
	return nil
}

// Sink adapts the store to the pipeline's report sink interface. Append
// errors are counted rather than propagated (alert delivery must not
// block detection).
type Sink struct {
	Store *Store

	mu     sync.Mutex
	errors int
}

// NewSink wraps a store as a pipeline sink.
func NewSink(store *Store) *Sink { return &Sink{Store: store} }

// Notify implements the pipeline Sink interface.
func (s *Sink) Notify(r *core.Report) { _ = s.TryNotify(r) }

// TryNotify appends the report and reports the failure, implementing the
// pipeline's FallibleSink interface: a failing append (disk full, closed
// store) feeds the pipeline's retry loop and circuit breaker instead of
// being swallowed, and terminally failed reports spill rather than
// vanish. The error counter still advances for Errors().
func (s *Sink) TryNotify(r *core.Report) error {
	_, err := s.Store.Append(r)
	if err != nil {
		s.mu.Lock()
		s.errors++
		s.mu.Unlock()
	}
	return err
}

// Errors returns the count of failed appends.
func (s *Sink) Errors() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errors
}
