package alertstore

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"logsynergy/internal/core"
)

func report(system string, score float64, at time.Time) *core.Report {
	return &core.Report{
		System:          system,
		Timestamp:       at,
		Score:           score,
		EventIDs:        []int{1, 2, 3},
		Templates:       []string{"a", "b", "c"},
		Interpretations: []string{"ia", "ib", "ic"},
	}
}

func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "alerts.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func TestAppendAndFind(t *testing.T) {
	s, _ := openTemp(t)
	base := time.Date(2023, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		sys := "A"
		if i%2 == 1 {
			sys = "B"
		}
		if _, err := s.Append(report(sys, 0.5+float64(i)*0.1, base.Add(time.Duration(i)*time.Hour))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("len %d", s.Len())
	}
	if got := s.Find(Query{System: "A"}); len(got) != 3 {
		t.Fatalf("system filter: %d", len(got))
	}
	if got := s.Find(Query{MinScore: 0.85}); len(got) != 1 {
		t.Fatalf("score filter: %d", len(got))
	}
	got := s.Find(Query{From: base.Add(90 * time.Minute), To: base.Add(200 * time.Minute)})
	if len(got) != 2 {
		t.Fatalf("time filter: %d", len(got))
	}
	if got := s.Find(Query{Limit: 2}); len(got) != 2 {
		t.Fatalf("limit: %d", len(got))
	}
}

func TestReopenRecovers(t *testing.T) {
	s, path := openTemp(t)
	at := time.Date(2023, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		s.Append(report("A", 0.9, at))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("recovered %d records, want 3", s2.Len())
	}
	rec, err := s2.Append(report("A", 0.7, at))
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != 4 {
		t.Fatalf("id continuity broken: %d", rec.ID)
	}
}

func TestTornTailDropped(t *testing.T) {
	s, path := openTemp(t)
	at := time.Now().UTC()
	s.Append(report("A", 0.9, at))
	s.Append(report("A", 0.8, at))
	s.Close()
	// Simulate a crash mid-append: garbage trailing bytes.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"id":3,"report":{"sys`)
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("want 2 intact records, got %d", s2.Len())
	}
	if rec, _ := s2.Append(report("A", 0.6, at)); rec.ID != 3 {
		t.Fatalf("next id %d want 3", rec.ID)
	}
}

func TestAcknowledgePersists(t *testing.T) {
	s, path := openTemp(t)
	at := time.Now().UTC()
	rec, _ := s.Append(report("A", 0.9, at))
	s.Append(report("A", 0.8, at))

	ok, err := s.Acknowledge(rec.ID)
	if err != nil || !ok {
		t.Fatalf("ack failed: %v %v", ok, err)
	}
	if open := s.Find(Query{UnacknowledgedOnly: true}); len(open) != 1 {
		t.Fatalf("open alerts: %d", len(open))
	}
	if ok, _ := s.Acknowledge(999); ok {
		t.Fatal("unknown id must not acknowledge")
	}
	s.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("replay with superseded versions: %d records", s2.Len())
	}
	if open := s2.Find(Query{UnacknowledgedOnly: true}); len(open) != 1 {
		t.Fatalf("ack not persisted: %d open", len(open))
	}
}

func TestCompact(t *testing.T) {
	s, path := openTemp(t)
	at := time.Now().UTC()
	for i := 0; i < 10; i++ {
		rec, _ := s.Append(report("A", 0.5+float64(i)*0.05, at))
		if i < 5 {
			s.Acknowledge(rec.ID)
		}
	}
	// Drop acknowledged alerts.
	if err := s.Compact(func(r Record) bool { return !r.Acknowledged }); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("after compaction: %d", s.Len())
	}
	// Store still writable post-compaction.
	if _, err := s.Append(report("A", 0.99, at)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 6 {
		t.Fatalf("compacted file reload: %d", s2.Len())
	}
}

func TestConcurrentAppends(t *testing.T) {
	s, _ := openTemp(t)
	at := time.Now().UTC()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := s.Append(report("A", 0.9, at)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != 200 {
		t.Fatalf("concurrent appends lost records: %d", s.Len())
	}
	seen := map[uint64]bool{}
	for _, r := range s.Find(Query{}) {
		if seen[r.ID] {
			t.Fatalf("duplicate id %d", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestSinkCollectsReports(t *testing.T) {
	s, _ := openTemp(t)
	sink := NewSink(s)
	sink.Notify(report("A", 0.9, time.Now()))
	sink.Notify(report("A", 0.95, time.Now()))
	if s.Len() != 2 || sink.Errors() != 0 {
		t.Fatalf("sink stored %d, errors %d", s.Len(), sink.Errors())
	}
}

func TestOpenBadDirectory(t *testing.T) {
	if _, err := Open("/nonexistent-dir-xyz/alerts.jsonl"); err == nil {
		t.Fatal("unwritable path must error")
	}
}

func TestSyncModeAppend(t *testing.T) {
	s, _ := openTemp(t)
	s.Sync = true
	if _, err := s.Append(report("A", 0.9, time.Now())); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatal("sync append lost the record")
	}
}

func TestCloseIdempotent(t *testing.T) {
	s, _ := openTemp(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second close must be a no-op")
	}
}

func TestQueryEmptyStore(t *testing.T) {
	s, _ := openTemp(t)
	if got := s.Find(Query{System: "X"}); len(got) != 0 {
		t.Fatalf("empty store returned %d records", len(got))
	}
}
