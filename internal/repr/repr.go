// Package repr builds model-ready representations from windowed log
// sequences: it interprets each discovered event template (LEI or raw),
// embeds the interpretations into the shared feature space, and assembles
// [N, T, D] tensors plus label vectors for training and evaluation.
package repr

import (
	"fmt"
	"math/rand"

	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/logdata"
	"logsynergy/internal/tensor"
)

// SystemHint renders the prompt context sentence for a dataset, as the
// paper's Fig. 2 prompts do ("the logs come from an HPC system").
func SystemHint(system string) string {
	switch system {
	case "BGL", "Spirit", "Thunderbird":
		return "an HPC supercomputer system (" + system + ")"
	default:
		return "a cloud data management system (" + system + ")"
	}
}

// EventTable maps every event id of one system to its embedding.
type EventTable struct {
	// System is the originating system's name.
	System string
	// Dim is the embedding dimension.
	Dim int
	// Vectors is [numEvents, Dim]; row i embeds event id i.
	Vectors *tensor.Tensor
	// Interps records the interpretation used for each event (audit).
	Interps []lei.Interpretation
}

// BuildEventTable interprets and embeds every template of a windowed
// dataset. Pass lei.Identity{} to skip interpretation (the "w/o LEI"
// ablation); pass a *lei.SimLLM for the full pipeline.
func BuildEventTable(seqs *logdata.Sequences, it lei.Interpreter, e *embed.Embedder) *EventTable {
	hint := SystemHint(seqs.System)
	interps := lei.InterpretAll(it, hint, seqs.Templates)
	texts := make([]string, len(interps))
	for i, in := range interps {
		texts[i] = in.Text
	}
	return &EventTable{
		System:  seqs.System,
		Dim:     e.Dim,
		Vectors: e.EmbedAll(texts),
		Interps: interps,
	}
}

// Len returns the number of events in the table.
func (t *EventTable) Len() int { return t.Vectors.Rows() }

// Clone deep-copies the table. Sharded deployments give each partition
// its own clone of the offline table so online extension (Extend) can
// proceed independently per partition without synchronization; the
// shared model weights stay read-only.
func (t *EventTable) Clone() *EventTable {
	return &EventTable{
		System:  t.System,
		Dim:     t.Dim,
		Vectors: t.Vectors.Clone(),
		Interps: append([]lei.Interpretation(nil), t.Interps...),
	}
}

// Extend appends one new event (paper §III-E: "when a new log event
// appears, LogSynergy maps the new log event into an event embedding").
// The event receives the next id; the caller must keep its own id space in
// sync with the parser's.
func (t *EventTable) Extend(in lei.Interpretation, e *embed.Embedder) {
	v := e.Embed(in.Text)
	old := t.Vectors
	grown := tensor.New(old.Rows()+1, t.Dim)
	copy(grown.Data, old.Data)
	copy(grown.Data[old.Rows()*t.Dim:], v)
	t.Vectors = grown
	t.Interps = append(t.Interps, in)
}

// Dataset is a fully materialized tensor dataset for one system.
type Dataset struct {
	// System is the originating system's name.
	System string
	// X is the [N, T, Dim] input tensor.
	X *tensor.Tensor
	// Labels holds the N sequence labels.
	Labels []bool
	// Table is the event table X was built from.
	Table *EventTable
	// SeqLen is T.
	SeqLen int
}

// BuildDataset embeds every sequence of seqs using the event table.
func BuildDataset(seqs *logdata.Sequences, table *EventTable) *Dataset {
	if len(seqs.Samples) == 0 {
		return &Dataset{System: seqs.System, X: tensor.New(0, 0, table.Dim), Table: table}
	}
	t := len(seqs.Samples[0].EventIDs)
	d := table.Dim
	x := tensor.New(len(seqs.Samples), t, d)
	labels := make([]bool, len(seqs.Samples))
	for i, s := range seqs.Samples {
		if len(s.EventIDs) != t {
			panic(fmt.Sprintf("repr: ragged sequence lengths %d vs %d", len(s.EventIDs), t))
		}
		labels[i] = s.Label
		for j, id := range s.EventIDs {
			if id < 0 || id >= table.Vectors.Rows() {
				panic(fmt.Sprintf("repr: event id %d outside table of %d events", id, table.Vectors.Rows()))
			}
			copy(x.Data[(i*t+j)*d:(i*t+j+1)*d], table.Vectors.Data[id*d:(id+1)*d])
		}
	}
	return &Dataset{System: seqs.System, X: x, Labels: labels, Table: table, SeqLen: t}
}

// Build runs the whole representation stage for one system.
func Build(seqs *logdata.Sequences, it lei.Interpreter, e *embed.Embedder) *Dataset {
	return BuildDataset(seqs, BuildEventTable(seqs, it, e))
}

// Len returns the number of sequences.
func (d *Dataset) Len() int { return len(d.Labels) }

// Dim returns the per-event embedding dimension.
func (d *Dataset) Dim() int { return d.Table.Dim }

// Gather materializes the [len(idx), T, Dim] tensor and labels for the
// given sample indices.
func (d *Dataset) Gather(idx []int) (*tensor.Tensor, []float64) {
	t, dim := d.SeqLen, d.Dim()
	x := tensor.New(len(idx), t, dim)
	labels := make([]float64, len(idx))
	stride := t * dim
	for i, j := range idx {
		copy(x.Data[i*stride:(i+1)*stride], d.X.Data[j*stride:(j+1)*stride])
		if d.Labels[j] {
			labels[i] = 1
		}
	}
	return x, labels
}

// LabelFloats converts labels to a float vector (1 = anomalous).
func (d *Dataset) LabelFloats() []float64 {
	out := make([]float64, len(d.Labels))
	for i, l := range d.Labels {
		if l {
			out[i] = 1
		}
	}
	return out
}

// PositiveRate returns the fraction of anomalous sequences.
func (d *Dataset) PositiveRate() float64 {
	if len(d.Labels) == 0 {
		return 0
	}
	n := 0
	for _, l := range d.Labels {
		if l {
			n++
		}
	}
	return float64(n) / float64(len(d.Labels))
}

// Concat joins datasets with identical sequence length and dimension into
// one (labels concatenated in order). The result's Table is nil: a merged
// dataset spans multiple template spaces.
func Concat(parts ...*Dataset) *Dataset {
	if len(parts) == 0 {
		panic("repr: Concat needs at least one dataset")
	}
	t, dim := parts[0].SeqLen, parts[0].Dim()
	total := 0
	for _, p := range parts {
		if p.SeqLen != t || p.Dim() != dim {
			panic(fmt.Sprintf("repr: Concat shape mismatch [%d,%d] vs [%d,%d]", p.SeqLen, p.Dim(), t, dim))
		}
		total += p.Len()
	}
	x := tensor.New(total, t, dim)
	labels := make([]bool, 0, total)
	off := 0
	for _, p := range parts {
		copy(x.Data[off:], p.X.Data)
		off += len(p.X.Data)
		labels = append(labels, p.Labels...)
	}
	// Keep the first part's table only for Dim bookkeeping.
	return &Dataset{System: "merged", X: x, Labels: labels, Table: &EventTable{Dim: dim}, SeqLen: t}
}

// BalancedSampler draws minibatch indices with anomaly oversampling: rare
// anomalous sequences appear in roughly posFraction of each batch. With
// per-dataset anomaly rates as low as 0.17% (Table III), plain uniform
// sampling would starve the classifier of positive examples at the small
// batch sizes CPU training uses.
type BalancedSampler struct {
	pos, neg    []int
	posFraction float64
	rng         *rand.Rand
}

// NewBalancedSampler builds a sampler over the dataset's label vector.
func NewBalancedSampler(labels []bool, posFraction float64, rng *rand.Rand) *BalancedSampler {
	s := &BalancedSampler{posFraction: posFraction, rng: rng}
	for i, l := range labels {
		if l {
			s.pos = append(s.pos, i)
		} else {
			s.neg = append(s.neg, i)
		}
	}
	return s
}

// HasPositives reports whether any anomalous sample exists.
func (s *BalancedSampler) HasPositives() bool { return len(s.pos) > 0 }

// Sample returns n indices. If either class is empty the sampler falls
// back to uniform sampling over the other.
func (s *BalancedSampler) Sample(n int) []int {
	out := make([]int, n)
	for i := range out {
		usePos := len(s.pos) > 0 && (len(s.neg) == 0 || s.rng.Float64() < s.posFraction)
		if usePos {
			out[i] = s.pos[s.rng.Intn(len(s.pos))]
		} else {
			out[i] = s.neg[s.rng.Intn(len(s.neg))]
		}
	}
	return out
}
