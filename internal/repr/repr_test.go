package repr

import (
	"math/rand"
	"strings"
	"testing"

	"logsynergy/internal/embed"
	"logsynergy/internal/lei"
	"logsynergy/internal/logdata"
	"logsynergy/internal/window"
)

func buildSeqs(t *testing.T) *logdata.Sequences {
	t.Helper()
	return logdata.Build(logdata.SystemB(), 5, 0.005, window.Default())
}

func TestBuildEventTable(t *testing.T) {
	seqs := buildSeqs(t)
	e := embed.New(16)
	table := BuildEventTable(seqs, lei.NewSimLLM(lei.Config{}), e)
	if table.Vectors.Rows() != len(seqs.Templates) {
		t.Fatalf("table rows %d vs %d templates", table.Vectors.Rows(), len(seqs.Templates))
	}
	if table.Dim != 16 || table.System != "SystemB" {
		t.Fatalf("table metadata wrong: %+v", table)
	}
	if len(table.Interps) != len(seqs.Templates) {
		t.Fatal("missing interpretations")
	}
}

func TestSystemHint(t *testing.T) {
	if !strings.Contains(SystemHint("BGL"), "HPC") {
		t.Fatal("BGL must hint HPC")
	}
	if !strings.Contains(SystemHint("SystemA"), "cloud") {
		t.Fatal("SystemA must hint cloud")
	}
}

func TestBuildDatasetShapesAndRows(t *testing.T) {
	seqs := buildSeqs(t)
	e := embed.New(16)
	d := Build(seqs, lei.Identity{}, e)
	if d.Len() != len(seqs.Samples) || d.SeqLen != 10 || d.Dim() != 16 {
		t.Fatalf("dataset dims: len=%d seqlen=%d dim=%d", d.Len(), d.SeqLen, d.Dim())
	}
	// Row 0, step 0 must equal the event-table row for that event id.
	id := seqs.Samples[0].EventIDs[0]
	for k := 0; k < 16; k++ {
		if d.X.Data[k] != d.Table.Vectors.Data[id*16+k] {
			t.Fatal("dataset row does not match event table")
		}
	}
}

func TestGatherMatchesDataset(t *testing.T) {
	seqs := buildSeqs(t)
	d := Build(seqs, lei.Identity{}, embed.New(8))
	x, labels := d.Gather([]int{2, 0})
	if x.Dim(0) != 2 {
		t.Fatalf("gather batch dim %d", x.Dim(0))
	}
	stride := d.SeqLen * d.Dim()
	for k := 0; k < stride; k++ {
		if x.Data[k] != d.X.Data[2*stride+k] {
			t.Fatal("gather row 0 should be dataset row 2")
		}
	}
	if (labels[0] == 1) != d.Labels[2] || (labels[1] == 1) != d.Labels[0] {
		t.Fatal("gather labels mismatch")
	}
}

func TestLabelFloatsAndPositiveRate(t *testing.T) {
	d := &Dataset{Labels: []bool{true, false, true, false}}
	f := d.LabelFloats()
	if f[0] != 1 || f[1] != 0 {
		t.Fatalf("label floats: %v", f)
	}
	if d.PositiveRate() != 0.5 {
		t.Fatalf("positive rate %v", d.PositiveRate())
	}
}

func TestConcat(t *testing.T) {
	seqs := buildSeqs(t)
	e := embed.New(8)
	d := Build(seqs, lei.Identity{}, e)
	joined := Concat(d, d)
	if joined.Len() != 2*d.Len() {
		t.Fatalf("concat len %d want %d", joined.Len(), 2*d.Len())
	}
	stride := d.SeqLen * d.Dim()
	if joined.X.Data[d.Len()*stride] != d.X.Data[0] {
		t.Fatal("second half must replicate first dataset")
	}
}

func TestBalancedSamplerOversamples(t *testing.T) {
	labels := make([]bool, 1000)
	labels[7] = true // single positive
	rng := rand.New(rand.NewSource(1))
	s := NewBalancedSampler(labels, 0.3, rng)
	if !s.HasPositives() {
		t.Fatal("sampler must see the positive")
	}
	idx := s.Sample(10000)
	pos := 0
	for _, i := range idx {
		if labels[i] {
			pos++
		}
	}
	rate := float64(pos) / float64(len(idx))
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("oversampling rate %.3f, want ≈0.3", rate)
	}
}

func TestBalancedSamplerNoPositives(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewBalancedSampler(make([]bool, 50), 0.3, rng)
	if s.HasPositives() {
		t.Fatal("no positives expected")
	}
	for _, i := range s.Sample(100) {
		if i < 0 || i >= 50 {
			t.Fatalf("index %d out of range", i)
		}
	}
}

func TestIdentityVsLEIRepresentationsDiffer(t *testing.T) {
	seqs := buildSeqs(t)
	e := embed.New(32)
	raw := BuildEventTable(seqs, lei.Identity{}, e)
	interpreted := BuildEventTable(seqs, lei.NewSimLLM(lei.Config{}), e)
	same := 0
	for i := 0; i < raw.Vectors.Size(); i++ {
		if raw.Vectors.Data[i] == interpreted.Vectors.Data[i] {
			same++
		}
	}
	if same == raw.Vectors.Size() {
		t.Fatal("LEI must change the representation")
	}
}
